# Empty compiler generated dependencies file for fast_baseline.
# This may be replaced when dependencies are built.
