
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/pca_sift_baseline.cpp" "src/baseline/CMakeFiles/fast_baseline.dir/pca_sift_baseline.cpp.o" "gcc" "src/baseline/CMakeFiles/fast_baseline.dir/pca_sift_baseline.cpp.o.d"
  "/root/repo/src/baseline/rnpe.cpp" "src/baseline/CMakeFiles/fast_baseline.dir/rnpe.cpp.o" "gcc" "src/baseline/CMakeFiles/fast_baseline.dir/rnpe.cpp.o.d"
  "/root/repo/src/baseline/sift_baseline.cpp" "src/baseline/CMakeFiles/fast_baseline.dir/sift_baseline.cpp.o" "gcc" "src/baseline/CMakeFiles/fast_baseline.dir/sift_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/fast_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/fast_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fast_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fast_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/img/CMakeFiles/fast_img.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
