file(REMOVE_RECURSE
  "CMakeFiles/fast_baseline.dir/pca_sift_baseline.cpp.o"
  "CMakeFiles/fast_baseline.dir/pca_sift_baseline.cpp.o.d"
  "CMakeFiles/fast_baseline.dir/rnpe.cpp.o"
  "CMakeFiles/fast_baseline.dir/rnpe.cpp.o.d"
  "CMakeFiles/fast_baseline.dir/sift_baseline.cpp.o"
  "CMakeFiles/fast_baseline.dir/sift_baseline.cpp.o.d"
  "libfast_baseline.a"
  "libfast_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
