file(REMOVE_RECURSE
  "libfast_baseline.a"
)
