# Empty compiler generated dependencies file for fast_storage.
# This may be replaced when dependencies are built.
