file(REMOVE_RECURSE
  "libfast_storage.a"
)
