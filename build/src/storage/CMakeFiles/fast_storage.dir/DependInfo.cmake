
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/page_cache.cpp" "src/storage/CMakeFiles/fast_storage.dir/page_cache.cpp.o" "gcc" "src/storage/CMakeFiles/fast_storage.dir/page_cache.cpp.o.d"
  "/root/repo/src/storage/shard.cpp" "src/storage/CMakeFiles/fast_storage.dir/shard.cpp.o" "gcc" "src/storage/CMakeFiles/fast_storage.dir/shard.cpp.o.d"
  "/root/repo/src/storage/sql_like_store.cpp" "src/storage/CMakeFiles/fast_storage.dir/sql_like_store.cpp.o" "gcc" "src/storage/CMakeFiles/fast_storage.dir/sql_like_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fast_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
