file(REMOVE_RECURSE
  "CMakeFiles/fast_storage.dir/page_cache.cpp.o"
  "CMakeFiles/fast_storage.dir/page_cache.cpp.o.d"
  "CMakeFiles/fast_storage.dir/shard.cpp.o"
  "CMakeFiles/fast_storage.dir/shard.cpp.o.d"
  "CMakeFiles/fast_storage.dir/sql_like_store.cpp.o"
  "CMakeFiles/fast_storage.dir/sql_like_store.cpp.o.d"
  "libfast_storage.a"
  "libfast_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
