file(REMOVE_RECURSE
  "CMakeFiles/fast_img.dir/draw.cpp.o"
  "CMakeFiles/fast_img.dir/draw.cpp.o.d"
  "CMakeFiles/fast_img.dir/image.cpp.o"
  "CMakeFiles/fast_img.dir/image.cpp.o.d"
  "CMakeFiles/fast_img.dir/pnm_io.cpp.o"
  "CMakeFiles/fast_img.dir/pnm_io.cpp.o.d"
  "CMakeFiles/fast_img.dir/transform.cpp.o"
  "CMakeFiles/fast_img.dir/transform.cpp.o.d"
  "libfast_img.a"
  "libfast_img.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
