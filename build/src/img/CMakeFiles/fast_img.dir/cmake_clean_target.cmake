file(REMOVE_RECURSE
  "libfast_img.a"
)
