
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/img/draw.cpp" "src/img/CMakeFiles/fast_img.dir/draw.cpp.o" "gcc" "src/img/CMakeFiles/fast_img.dir/draw.cpp.o.d"
  "/root/repo/src/img/image.cpp" "src/img/CMakeFiles/fast_img.dir/image.cpp.o" "gcc" "src/img/CMakeFiles/fast_img.dir/image.cpp.o.d"
  "/root/repo/src/img/pnm_io.cpp" "src/img/CMakeFiles/fast_img.dir/pnm_io.cpp.o" "gcc" "src/img/CMakeFiles/fast_img.dir/pnm_io.cpp.o.d"
  "/root/repo/src/img/transform.cpp" "src/img/CMakeFiles/fast_img.dir/transform.cpp.o" "gcc" "src/img/CMakeFiles/fast_img.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
