# Empty compiler generated dependencies file for fast_img.
# This may be replaced when dependencies are built.
