file(REMOVE_RECURSE
  "libfast_mobile.a"
)
