file(REMOVE_RECURSE
  "CMakeFiles/fast_mobile.dir/chunker.cpp.o"
  "CMakeFiles/fast_mobile.dir/chunker.cpp.o.d"
  "CMakeFiles/fast_mobile.dir/transmitter.cpp.o"
  "CMakeFiles/fast_mobile.dir/transmitter.cpp.o.d"
  "CMakeFiles/fast_mobile.dir/user_groups.cpp.o"
  "CMakeFiles/fast_mobile.dir/user_groups.cpp.o.d"
  "libfast_mobile.a"
  "libfast_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
