# Empty compiler generated dependencies file for fast_mobile.
# This may be replaced when dependencies are built.
