file(REMOVE_RECURSE
  "libfast_core.a"
)
