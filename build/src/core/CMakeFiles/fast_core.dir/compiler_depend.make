# Empty compiler generated dependencies file for fast_core.
# This may be replaced when dependencies are built.
