file(REMOVE_RECURSE
  "CMakeFiles/fast_core.dir/fast_index.cpp.o"
  "CMakeFiles/fast_core.dir/fast_index.cpp.o.d"
  "CMakeFiles/fast_core.dir/query_engine.cpp.o"
  "CMakeFiles/fast_core.dir/query_engine.cpp.o.d"
  "CMakeFiles/fast_core.dir/sharded_index.cpp.o"
  "CMakeFiles/fast_core.dir/sharded_index.cpp.o.d"
  "libfast_core.a"
  "libfast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
