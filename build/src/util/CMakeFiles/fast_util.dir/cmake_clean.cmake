file(REMOVE_RECURSE
  "CMakeFiles/fast_util.dir/rng.cpp.o"
  "CMakeFiles/fast_util.dir/rng.cpp.o.d"
  "CMakeFiles/fast_util.dir/stats.cpp.o"
  "CMakeFiles/fast_util.dir/stats.cpp.o.d"
  "CMakeFiles/fast_util.dir/table.cpp.o"
  "CMakeFiles/fast_util.dir/table.cpp.o.d"
  "CMakeFiles/fast_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fast_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/fast_util.dir/vecmath.cpp.o"
  "CMakeFiles/fast_util.dir/vecmath.cpp.o.d"
  "libfast_util.a"
  "libfast_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
