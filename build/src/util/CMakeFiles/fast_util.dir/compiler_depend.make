# Empty compiler generated dependencies file for fast_util.
# This may be replaced when dependencies are built.
