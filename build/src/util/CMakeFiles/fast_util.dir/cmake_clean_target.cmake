file(REMOVE_RECURSE
  "libfast_util.a"
)
