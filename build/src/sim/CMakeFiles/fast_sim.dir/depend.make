# Empty dependencies file for fast_sim.
# This may be replaced when dependencies are built.
