file(REMOVE_RECURSE
  "CMakeFiles/fast_sim.dir/cluster_model.cpp.o"
  "CMakeFiles/fast_sim.dir/cluster_model.cpp.o.d"
  "libfast_sim.a"
  "libfast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
