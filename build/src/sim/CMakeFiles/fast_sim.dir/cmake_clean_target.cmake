file(REMOVE_RECURSE
  "libfast_sim.a"
)
