# Empty compiler generated dependencies file for fast_index.
# This may be replaced when dependencies are built.
