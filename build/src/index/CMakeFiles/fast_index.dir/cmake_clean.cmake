file(REMOVE_RECURSE
  "CMakeFiles/fast_index.dir/kd_tree.cpp.o"
  "CMakeFiles/fast_index.dir/kd_tree.cpp.o.d"
  "CMakeFiles/fast_index.dir/linear_scan.cpp.o"
  "CMakeFiles/fast_index.dir/linear_scan.cpp.o.d"
  "CMakeFiles/fast_index.dir/r_tree.cpp.o"
  "CMakeFiles/fast_index.dir/r_tree.cpp.o.d"
  "libfast_index.a"
  "libfast_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
