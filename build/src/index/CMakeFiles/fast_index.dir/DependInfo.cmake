
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/kd_tree.cpp" "src/index/CMakeFiles/fast_index.dir/kd_tree.cpp.o" "gcc" "src/index/CMakeFiles/fast_index.dir/kd_tree.cpp.o.d"
  "/root/repo/src/index/linear_scan.cpp" "src/index/CMakeFiles/fast_index.dir/linear_scan.cpp.o" "gcc" "src/index/CMakeFiles/fast_index.dir/linear_scan.cpp.o.d"
  "/root/repo/src/index/r_tree.cpp" "src/index/CMakeFiles/fast_index.dir/r_tree.cpp.o" "gcc" "src/index/CMakeFiles/fast_index.dir/r_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
