file(REMOVE_RECURSE
  "libfast_index.a"
)
