# Empty dependencies file for img_test.
# This may be replaced when dependencies are built.
