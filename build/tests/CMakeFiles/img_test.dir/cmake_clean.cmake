file(REMOVE_RECURSE
  "CMakeFiles/img_test.dir/img_test.cpp.o"
  "CMakeFiles/img_test.dir/img_test.cpp.o.d"
  "img_test"
  "img_test.pdb"
  "img_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/img_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
