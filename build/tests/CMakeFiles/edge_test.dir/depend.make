# Empty dependencies file for edge_test.
# This may be replaced when dependencies are built.
