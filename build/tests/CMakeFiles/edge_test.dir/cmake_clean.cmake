file(REMOVE_RECURSE
  "CMakeFiles/edge_test.dir/edge_test.cpp.o"
  "CMakeFiles/edge_test.dir/edge_test.cpp.o.d"
  "edge_test"
  "edge_test.pdb"
  "edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
