file(REMOVE_RECURSE
  "CMakeFiles/sharded_test.dir/sharded_test.cpp.o"
  "CMakeFiles/sharded_test.dir/sharded_test.cpp.o.d"
  "sharded_test"
  "sharded_test.pdb"
  "sharded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
