file(REMOVE_RECURSE
  "CMakeFiles/concurrent_test.dir/concurrent_test.cpp.o"
  "CMakeFiles/concurrent_test.dir/concurrent_test.cpp.o.d"
  "concurrent_test"
  "concurrent_test.pdb"
  "concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
