# Empty dependencies file for concurrent_test.
# This may be replaced when dependencies are built.
