file(REMOVE_RECURSE
  "CMakeFiles/mobile_test.dir/mobile_test.cpp.o"
  "CMakeFiles/mobile_test.dir/mobile_test.cpp.o.d"
  "mobile_test"
  "mobile_test.pdb"
  "mobile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
