# Empty compiler generated dependencies file for mobile_test.
# This may be replaced when dependencies are built.
