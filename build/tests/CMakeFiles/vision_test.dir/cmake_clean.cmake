file(REMOVE_RECURSE
  "CMakeFiles/vision_test.dir/vision_test.cpp.o"
  "CMakeFiles/vision_test.dir/vision_test.cpp.o.d"
  "vision_test"
  "vision_test.pdb"
  "vision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
