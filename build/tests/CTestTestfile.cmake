# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/img_test[1]_include.cmake")
include("/root/repo/build/tests/vision_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/mobile_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/concurrent_test[1]_include.cmake")
