// Edge-case coverage across modules: degenerate inputs, boundary sizes and
// error paths that the mainline tests do not reach.
#include <gtest/gtest.h>

#include "hash/bloom_filter.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/minhash.hpp"
#include "hash/sparse_signature.hpp"
#include "img/image.hpp"
#include "img/draw.hpp"
#include "img/transform.hpp"
#include "index/r_tree.hpp"
#include "util/rng.hpp"
#include "vision/dog_detector.hpp"
#include "vision/gaussian.hpp"
#include "vision/pyramid.hpp"

namespace fast {
namespace {

// ---------- images ----------

TEST(Edge, OnePixelImageOperations) {
  img::Image im(1, 1, 0.5f);
  EXPECT_EQ(im.at_clamped(-3, 7), 0.5f);
  EXPECT_EQ(im.sample_bilinear(0.3, 0.9), 0.5f);
  const img::Image d = im.downsample2();
  EXPECT_EQ(d.width(), 1u);  // clamps at 1, never 0
  const img::Image u = im.upsample2();
  EXPECT_EQ(u.width(), 2u);
}

TEST(Edge, OddSizedDownsample) {
  img::Image im(7, 5, 0.25f);
  const img::Image d = im.downsample2();
  EXPECT_EQ(d.width(), 3u);
  EXPECT_EQ(d.height(), 2u);
  for (float p : d.pixels()) EXPECT_EQ(p, 0.25f);
}

TEST(Edge, WarpOfEmptyRegionSafe) {
  img::Image im(4, 4, 1.0f);
  img::Affine t;
  t.tx = 1000;  // samples far outside: border replication everywhere
  const img::Image out = img::warp_affine(im, t);
  for (float p : out.pixels()) EXPECT_EQ(p, 1.0f);
}

// ---------- vision on tiny inputs ----------

TEST(Edge, PyramidOnMinimumSizeImage) {
  img::Image im(16, 16, 0.5f);
  im.at(8, 8) = 1.0f;
  const vision::Pyramid pyr = vision::build_pyramid(im);
  EXPECT_EQ(pyr.octaves.size(), 1u);  // min_dimension stops octave 2
}

TEST(Edge, DetectorOnTinyImageDoesNotCrash) {
  img::Image im(16, 16, 0.2f);
  img::fill_circle(im, 8, 8, 2.0, 1.0f);
  const auto kps = vision::detect_keypoints(im);
  for (const auto& kp : kps) {
    EXPECT_GE(kp.x, 0.0);
    EXPECT_LT(kp.x, 16.0);
  }
}

TEST(Edge, BlurSigmaSmallerThanPixel) {
  img::Image im(8, 8, 0.5f);
  im.at(4, 4) = 1.0f;
  const img::Image out = vision::gaussian_blur(im, 0.3);
  // Total intensity preserved by a normalized kernel (away from borders).
  double sum_in = 0, sum_out = 0;
  for (float p : im.pixels()) sum_in += p;
  for (float p : out.pixels()) sum_out += p;
  EXPECT_NEAR(sum_in, sum_out, 0.01);
}

// ---------- hashing edge cases ----------

TEST(Edge, BloomSingleBitArray) {
  hash::BloomFilter bf(64, 1);  // rounded to one word, one hash
  bf.insert_u64(9);
  EXPECT_TRUE(bf.maybe_contains_u64(9));
  EXPECT_EQ(bf.set_bit_count(), 1u);
}

TEST(Edge, SparseSignatureEmptyEncode) {
  const hash::SparseSignature sig({}, 1024);
  const auto bytes = sig.encode();
  const hash::SparseSignature back = hash::SparseSignature::decode(bytes);
  EXPECT_EQ(back.popcount(), 0u);
  EXPECT_EQ(back.bit_count(), 1024u);
}

TEST(Edge, SparseSignatureDecodeTruncatedThrows) {
  const hash::SparseSignature sig({5, 100, 900}, 1024);
  auto bytes = sig.encode();
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(hash::SparseSignature::decode(bytes), std::runtime_error);
}

TEST(Edge, MinHashOfEmptySignatureIsSentinel) {
  hash::MinHasher mh(hash::MinHashConfig{.bands = 4, .band_size = 2,
                                         .seed = 1});
  const hash::SparseSignature empty({}, 256);
  const auto m = mh.minhashes(empty);
  for (const auto& p : m) {
    EXPECT_EQ(p.min, ~0ULL);
  }
  // Two empty signatures band identically (deterministic grouping).
  const auto m2 = mh.minhashes(hash::SparseSignature({}, 256));
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(mh.band_key(b, m), mh.band_key(b, m2));
  }
}

TEST(Edge, FlatCuckooCapacityFloor) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 1;  // clamped to 4 * window
  cfg.window = 2;
  hash::FlatCuckooTable t(cfg);
  EXPECT_GE(t.capacity(), 8u);
  EXPECT_TRUE(t.insert(1, 1));
  EXPECT_TRUE(t.contains(1));
}

TEST(Edge, FlatCuckooValueZeroAndKeyZero) {
  hash::FlatCuckooConfig cfg;
  cfg.capacity = 32;
  hash::FlatCuckooTable t(cfg);
  EXPECT_TRUE(t.insert(0, 0));
  ASSERT_TRUE(t.find(0).has_value());
  EXPECT_EQ(t.find(0).value(), 0u);
}

// ---------- R-tree edge cases ----------

TEST(Edge, RTreeDuplicatePositions) {
  index::RTree tree(4);
  for (std::uint64_t i = 0; i < 30; ++i) tree.insert(i, 5.0, 5.0);
  const auto hits = tree.range(index::Rect{4, 4, 6, 6});
  EXPECT_EQ(hits.size(), 30u);
  const auto knn = tree.nearest(5.0, 5.0, 10);
  EXPECT_EQ(knn.size(), 10u);
  for (const auto& n : knn) EXPECT_EQ(n.distance, 0.0);
}

TEST(Edge, RTreeEmptyQueries) {
  index::RTree tree(4);
  EXPECT_TRUE(tree.range(index::Rect{0, 0, 1, 1}).empty());
  EXPECT_TRUE(tree.nearest(0, 0, 3).empty());
}

TEST(Edge, RTreeNegativeCoordinates) {
  index::RTree tree(4);
  tree.insert(1, -10, -10);
  tree.insert(2, 10, 10);
  const auto hits = tree.range(index::Rect{-20, -20, 0, 0});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

// ---------- rng determinism across reseed ----------

TEST(Edge, RngReseedRestoresSequence) {
  util::Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(rng.next_u64());
  rng.reseed(77);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

}  // namespace
}  // namespace fast
