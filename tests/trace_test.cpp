// Tests for the per-request tracing layer (util/trace.hpp): sampling
// decisions, span nesting and ordering, attributes, the slow-query ring,
// Chrome trace export, and — under TSan — concurrent traced pipeline
// traffic through ConcurrentFastIndex.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_index.hpp"
#include "core/fast_index.hpp"
#include "core/tiered_index.hpp"
#include "test_helpers.hpp"
#include "util/trace.hpp"

namespace fast::util {
namespace {

/// Every test drives the process-global tracer, so each one starts by
/// configuring its own options and ends by switching tracing back off with
/// the buffers cleared — no state may leak between tests.
class TraceTest : public ::testing::Test {
 protected:
  void configure(double rate, double slow_s = 1e9,
                 std::size_t ring = 4, std::size_t max_profiles = 4096) {
    TraceOptions opts;
    opts.sample_rate = rate;
    opts.slow_query_s = slow_s;
    opts.slow_ring_capacity = ring;
    opts.max_profiles = max_profiles;
    Tracer::global().configure(opts);
    Tracer::global().reset();
  }
  void TearDown() override {
    configure(0.0);
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  configure(0.0);
  {
    TraceSpan root("query");
    EXPECT_FALSE(root.active());
    EXPECT_EQ(root.request_id(), 0u);
    root.attr("k", 10);  // must be a harmless no-op
    TraceSpan child("sa.keys");
    EXPECT_FALSE(child.active());
  }
  EXPECT_TRUE(Tracer::global().events().empty());
  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_EQ(stats.spans_recorded, 0u);
  EXPECT_EQ(stats.requests_seen, 0u);
}

TEST_F(TraceTest, RateOneRecordsNestedSpansWithSharedRequestId) {
  configure(1.0);
  {
    TraceSpan root("query");
    ASSERT_TRUE(root.active());
    EXPECT_NE(root.request_id(), 0u);
    TraceSpan keys("sa.keys");
    EXPECT_TRUE(keys.active());
    EXPECT_EQ(keys.request_id(), root.request_id());
  }
  {
    TraceSpan root2("insert");
    ASSERT_TRUE(root2.active());
  }
  std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 3u);
  auto find = [&](const char* name) -> const TraceEvent& {
    for (const auto& e : events) {
      if (std::string(e.name) == name) return e;
    }
    ADD_FAILURE() << "missing span " << name;
    return events.front();
  };
  const TraceEvent& root = find("query");
  const TraceEvent& keys = find("sa.keys");
  const TraceEvent& insert = find("insert");
  EXPECT_EQ(root.depth, 1u);
  EXPECT_EQ(keys.depth, 2u);
  EXPECT_EQ(insert.depth, 1u);
  // Same request for the nested pair; a fresh request id for the next root.
  EXPECT_EQ(keys.request_id, root.request_id);
  EXPECT_NE(insert.request_id, root.request_id);
  // The child is contained in the parent's [start, start+dur] window and
  // both ran on the same exported thread id.
  EXPECT_GE(keys.start_ns, root.start_ns);
  EXPECT_LE(keys.start_ns + keys.dur_ns, root.start_ns + root.dur_ns);
  EXPECT_EQ(keys.tid, root.tid);
  // The root outlives the child, so the later root starts after it ends.
  EXPECT_GE(insert.start_ns, root.start_ns + root.dur_ns);
}

TEST_F(TraceTest, FractionalRateSamplesEveryNthRequest) {
  configure(0.25);  // period 4: requests 0, 4 of 8 are sampled
  for (int i = 0; i < 8; ++i) {
    TraceSpan root("query");
    TraceSpan child("sa.keys");  // only recorded for sampled requests
  }
  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_EQ(stats.requests_seen, 8u);
  EXPECT_EQ(stats.requests_sampled, 2u);
  EXPECT_EQ(Tracer::global().events().size(), 4u);  // 2 roots + 2 children
}

TEST_F(TraceTest, AttrsAreRecordedAndCappedAtMax) {
  configure(1.0);
  {
    TraceSpan span("chs.probe");
    span.attr("bucket_probes", 48);
    span.attr("candidates", 17);
    for (int i = 0; i < 32; ++i) span.attr("extra", i);  // past the cap
  }
  std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events.front();
  EXPECT_EQ(e.attr_count, TraceEvent::kMaxAttrs);
  EXPECT_STREQ(e.attrs[0].key, "bucket_probes");
  EXPECT_DOUBLE_EQ(e.attrs[0].value, 48.0);
  EXPECT_STREQ(e.attrs[1].key, "candidates");
  EXPECT_DOUBLE_EQ(e.attrs[1].value, 17.0);
}

TEST_F(TraceTest, SlowQueryRingKeepsNewestAndEvictsOldest) {
  configure(1.0, /*slow_s=*/0.0, /*ring=*/3);
  for (int i = 0; i < 5; ++i) {
    QueryProfile p;
    p.request_id = static_cast<std::uint64_t>(i + 1);
    p.sampled = false;
    p.wall_s = 1.0;  // >= threshold 0: always slow
    Tracer::global().record_query(p);
  }
  std::vector<QueryProfile> slow = Tracer::global().slow_queries();
  ASSERT_EQ(slow.size(), 3u);  // ring capacity
  EXPECT_EQ(slow[0].request_id, 3u);  // oldest surviving entry first
  EXPECT_EQ(slow[1].request_id, 4u);
  EXPECT_EQ(slow[2].request_id, 5u);
  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_EQ(stats.slow_queries, 5u);
  EXPECT_EQ(stats.slow_evicted, 2u);
}

TEST_F(TraceTest, SampledProfileBudgetDropsExcess) {
  configure(1.0, /*slow_s=*/1e9, /*ring=*/4, /*max_profiles=*/2);
  for (int i = 0; i < 3; ++i) {
    QueryProfile p;
    p.sampled = true;
    p.wall_s = 1e-6;
    Tracer::global().record_query(p);
  }
  EXPECT_EQ(Tracer::global().sampled_profiles().size(), 2u);
  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_EQ(stats.profiles_recorded, 2u);
  EXPECT_EQ(stats.profiles_dropped, 1u);
}

TEST_F(TraceTest, ResetClearsDataButKeepsOptions) {
  configure(1.0, /*slow_s=*/0.0);
  {
    TraceSpan span("query");
  }
  QueryProfile p;
  p.sampled = true;
  p.wall_s = 1.0;
  Tracer::global().record_query(p);
  ASSERT_FALSE(Tracer::global().events().empty());
  Tracer::global().reset();
  EXPECT_TRUE(Tracer::global().events().empty());
  EXPECT_TRUE(Tracer::global().sampled_profiles().empty());
  EXPECT_TRUE(Tracer::global().slow_queries().empty());
  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_EQ(stats.spans_recorded, 0u);
  EXPECT_EQ(stats.slow_queries, 0u);
  EXPECT_TRUE(Tracer::global().enabled());  // options survive the reset
  EXPECT_DOUBLE_EQ(Tracer::global().options().sample_rate, 1.0);
}

TEST_F(TraceTest, ChromeTraceJsonHasCompleteEventsWithArgs) {
  configure(1.0);
  {
    TraceSpan span("query");
    span.attr("k", 10);
  }
  const std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST_F(TraceTest, ProfilesJsonReportsThresholdAndBothLists) {
  configure(1.0, /*slow_s=*/0.0);
  QueryProfile p;
  p.sampled = true;
  p.wall_s = 0.25;
  p.candidates = 17;
  Tracer::global().record_query(p);
  const std::string json = Tracer::global().profiles_json();
  EXPECT_NE(json.find("\"slow_query_threshold_s\""), std::string::npos);
  EXPECT_NE(json.find("\"profiles\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(json.find("\"candidates\": 17"), std::string::npos);
}

TEST_F(TraceTest, EnvConfigurationSetsRateThresholdAndRing) {
  ::setenv("FAST_TRACE", "0.5", 1);
  ::setenv("FAST_TRACE_SLOW_MS", "20", 1);
  ::setenv("FAST_TRACE_RING", "7", 1);
  EXPECT_TRUE(configure_global_tracer_from_env());
  const TraceOptions opts = Tracer::global().options();
  EXPECT_DOUBLE_EQ(opts.sample_rate, 0.5);
  EXPECT_DOUBLE_EQ(opts.slow_query_s, 0.020);
  EXPECT_EQ(opts.slow_ring_capacity, 7u);
  ::unsetenv("FAST_TRACE");
  ::unsetenv("FAST_TRACE_SLOW_MS");
  ::unsetenv("FAST_TRACE_RING");
}

// --- Pipeline integration -------------------------------------------------

core::FastConfig small_config() {
  core::FastConfig cfg;
  cfg.cuckoo.capacity = 512;
  return cfg;
}

hash::SparseSignature synthetic_signature(std::uint64_t id,
                                          std::size_t bloom_bits) {
  util::Rng rng(id * 0x9e3779b97f4a7c15ULL + 0x7ace);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(bloom_bits / 101));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(bits, bloom_bits);
}

TEST_F(TraceTest, FastIndexQueryEmitsStageSpansAndProfile) {
  configure(1.0, /*slow_s=*/0.0);
  core::FastIndex index(small_config(), test::fake_pca());
  const std::size_t bits = index.config().bloom_bits;
  for (std::uint64_t id = 0; id < 16; ++id) {
    index.insert_signature(id, synthetic_signature(id, bits));
  }
  Tracer::global().reset();  // keep only the query's spans

  (void)index.query_signature(synthetic_signature(3, bits), 5);

  std::vector<TraceEvent> events = Tracer::global().events();
  std::vector<std::string> names;
  for (const auto& e : events) names.emplace_back(e.name);
  for (const char* want : {"query", "sa.keys", "chs.probe", "rank"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing span " << want;
  }
  // All four spans belong to one request, rooted at "query".
  for (const auto& e : events) {
    EXPECT_EQ(e.request_id, events.front().request_id);
    if (std::string(e.name) == "query") {
      EXPECT_EQ(e.depth, 1u);
    }
  }
  // The profile reached both the sampled list and (threshold 0) the ring.
  std::vector<QueryProfile> profiles = Tracer::global().sampled_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_TRUE(profiles.front().sampled);
  EXPECT_EQ(profiles.front().k, 5u);
  EXPECT_GT(profiles.front().bucket_probes, 0u);
  EXPECT_GT(profiles.front().wall_s, 0.0);
  EXPECT_EQ(Tracer::global().slow_queries().size(), 1u);
}

TEST_F(TraceTest, UnsampledQueriesStillFeedTheSlowRing) {
  // Rate so low nothing is sampled in this test, but the threshold-0 ring
  // must still see every query: slow-query capture is enabled-gated, not
  // sample-gated.
  configure(1e-9, /*slow_s=*/0.0);
  core::FastIndex index(small_config(), test::fake_pca());
  const std::size_t bits = index.config().bloom_bits;
  for (std::uint64_t id = 0; id < 8; ++id) {
    index.insert_signature(id, synthetic_signature(id, bits));
  }
  Tracer::global().reset();
  // Sampling is deterministic: the first root span after reset() lands on
  // counter 0 and is always sampled. Burn that slot so the query is not.
  { TraceSpan warmup("warmup"); }
  (void)index.query_signature(synthetic_signature(1, bits), 3);
  EXPECT_TRUE(Tracer::global().sampled_profiles().empty());
  ASSERT_EQ(Tracer::global().slow_queries().size(), 1u);
  EXPECT_FALSE(Tracer::global().slow_queries().front().sampled);
}

// Churn-aware slow-ring behavior: a tiered index whose seals, tombstones
// and inline compactions run BETWEEN traced queries must still feed every
// query into the threshold-0 ring, cap it at capacity, keep the newest
// entries in order and count the evictions — layer churn must not drop or
// duplicate ring entries.
TEST_F(TraceTest, TieredChurnFeedsSlowRingWithBoundedCapacity) {
  constexpr std::size_t kRing = 8;
  configure(1.0, /*slow_s=*/0.0, /*ring=*/kRing, /*max_profiles=*/1 << 16);
  core::FastConfig cfg = small_config();
  cfg.tier.enabled = true;
  cfg.tier.seal_threshold = 8;
  cfg.tier.lanes = 2;
  cfg.tier.compact_fanin = 2;
  cfg.tier.compact_trigger = 2;
  cfg.tier.background = false;  // seals + merges run inline during churn
  core::TieredIndex index(cfg, test::fake_pca());
  const std::size_t bits = cfg.bloom_bits;

  Tracer::global().reset();
  constexpr std::uint64_t kQueries = 24;
  std::uint64_t id = 0;
  for (std::uint64_t q = 0; q < kQueries; ++q) {
    // Churn between queries: inserts cross seal thresholds, erases leave
    // tombstones, and compaction merges segments mid-stream.
    for (int i = 0; i < 4; ++i) {
      index.insert_signature(id, synthetic_signature(id, bits));
      ++id;
    }
    if (q % 2 == 1) index.erase(id - 3);
    (void)index.query_signature(synthetic_signature(q, bits), 5);
  }
  ASSERT_GT(index.segment_count() + index.tombstone_count(), 0u);

  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_EQ(stats.slow_queries, kQueries);
  EXPECT_EQ(stats.slow_evicted, kQueries - kRing);
  std::vector<QueryProfile> slow = Tracer::global().slow_queries();
  ASSERT_EQ(slow.size(), kRing);
  // Oldest surviving entry first, strictly newer toward the tail: only the
  // LAST kRing queries of the churn stream survive.
  for (std::size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GT(slow[i].request_id, slow[i - 1].request_id);
  }
  for (const auto& p : slow) {
    EXPECT_EQ(p.k, 5u);
    EXPECT_GE(p.wall_s, 0.0);
  }
}

// Concurrent traced traffic (runs under TSan in CI): readers and writers
// hammer one ConcurrentFastIndex while every request records spans, so the
// thread-buffer registration, sampling counters and profile/ring mutexes
// all get exercised cross-thread.
TEST_F(TraceTest, ConcurrentTracedInsertQueryEraseIsRaceFree) {
  configure(1.0, /*slow_s=*/0.0, /*ring=*/16, /*max_profiles=*/1 << 16);
  const vision::PcaModel pca = test::fake_pca();
  core::ConcurrentFastIndex index(small_config(), pca, 2);
  const std::size_t bits = index.unsafe_inner().config().bloom_bits;
  constexpr std::uint64_t kIds = 64;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    index.insert_signature(id, synthetic_signature(id, bits));
  }

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // writer: churn the upper id range
    for (std::uint64_t i = 0; i < 200; ++i) {
      const std::uint64_t id = kIds + (i % 16);
      index.insert_signature(id, synthetic_signature(id, bits));
      if (i % 3 == 0) index.erase(id);
    }
  });
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {  // readers: traced queries throughout
      for (std::uint64_t i = 0; i < 200; ++i) {
        const auto result = index.query_signature(
            synthetic_signature((i + static_cast<std::uint64_t>(r)) % kIds,
                                bits),
            5);
        ASSERT_LE(result.hits.size(), 5u);
      }
    });
  }
  for (auto& t : threads) t.join();

  const Tracer::Stats stats = Tracer::global().stats();
  EXPECT_GT(stats.spans_recorded, 0u);
  EXPECT_GT(stats.requests_sampled, 0u);
  EXPECT_EQ(stats.slow_queries,
            Tracer::global().stats().slow_queries);  // self-consistent read
  // Exports must be coherent snapshots even right after the storm.
  EXPECT_FALSE(Tracer::global().events().empty());
  EXPECT_FALSE(Tracer::global().chrome_trace_json().empty());
}

}  // namespace
}  // namespace fast::util
