// Admin-plane tests (DESIGN.md §3j): the pure HTTP request-head parser
// against malformed/oversized/split inputs, the endpoints of a live
// HttpAdmin over a real engine via stock HTTP GETs, and the lifecycle
// ordering guarantee — /readyz flips 503 the moment draining starts,
// while the data listener still answers.
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.hpp"
#include "core/tiered_index.hpp"
#include "server/client.hpp"
#include "server/http_admin.hpp"
#include "server/server.hpp"
#include "test_helpers.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace fast::server {
namespace {

constexpr std::size_t kMax = 8192;

// --- parse_http_request ----------------------------------------------------

TEST(HttpParseTest, ParsesSimpleGet) {
  HttpRequest req;
  EXPECT_EQ(parse_http_request("GET /metrics HTTP/1.0\r\n\r\n", kMax, &req),
            HttpParse::kOk);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(req.header_count, 0u);
}

TEST(HttpParseTest, ParsesHeadersAndCountsThem) {
  HttpRequest req;
  const std::string raw =
      "GET /varz HTTP/1.1\r\n"
      "Host: localhost:9900\r\n"
      "User-Agent: curl/8.0\r\n"
      "Accept: */*\r\n"
      "\r\n";
  EXPECT_EQ(parse_http_request(raw, kMax, &req), HttpParse::kOk);
  EXPECT_EQ(req.target, "/varz");
  EXPECT_EQ(req.header_count, 3u);
}

TEST(HttpParseTest, StripsQueryString) {
  HttpRequest req;
  EXPECT_EQ(parse_http_request("GET /metrics?format=prom HTTP/1.0\r\n\r\n",
                               kMax, &req),
            HttpParse::kOk);
  EXPECT_EQ(req.target, "/metrics");
}

TEST(HttpParseTest, NeedsMoreAtEverySplitPoint) {
  const std::string raw =
      "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n";
  // Every strict prefix must come back kNeedMore (never kBad/kOk), and the
  // full buffer must parse.
  for (std::size_t n = 0; n < raw.size(); ++n) {
    HttpRequest req;
    EXPECT_EQ(parse_http_request(raw.substr(0, n), kMax, &req),
              HttpParse::kNeedMore)
        << "prefix length " << n;
  }
  HttpRequest req;
  EXPECT_EQ(parse_http_request(raw, kMax, &req), HttpParse::kOk);
  EXPECT_EQ(req.target, "/healthz");
}

TEST(HttpParseTest, OversizedHeadIsTooLarge) {
  HttpRequest req;
  // No terminator and past the budget.
  const std::string big(kMax + 1, 'A');
  EXPECT_EQ(parse_http_request(big, kMax, &req), HttpParse::kTooLarge);
  // Terminator present but the head itself exceeds the budget.
  std::string padded = "GET /x HTTP/1.0\r\nX: ";
  padded.append(kMax, 'y');
  padded += "\r\n\r\n";
  EXPECT_EQ(parse_http_request(padded, kMax, &req), HttpParse::kTooLarge);
}

TEST(HttpParseTest, RejectsMalformedRequestLines) {
  HttpRequest req;
  // Not exactly METHOD SP TARGET SP VERSION.
  EXPECT_EQ(parse_http_request("GET /x\r\n\r\n", kMax, &req), HttpParse::kBad);
  EXPECT_EQ(parse_http_request("GET  /x HTTP/1.0\r\n\r\n", kMax, &req),
            HttpParse::kBad);
  EXPECT_EQ(parse_http_request("GET /x HTTP/1.0 extra\r\n\r\n", kMax, &req),
            HttpParse::kBad);
  // Version must start with HTTP/.
  EXPECT_EQ(parse_http_request("GET /x FTP/1.0\r\n\r\n", kMax, &req),
            HttpParse::kBad);
  // Empty request line.
  EXPECT_EQ(parse_http_request("\r\n\r\n", kMax, &req), HttpParse::kBad);
}

TEST(HttpParseTest, RejectsHeadersWithoutColon) {
  HttpRequest req;
  EXPECT_EQ(parse_http_request(
                "GET /x HTTP/1.0\r\nNoColonHere\r\n\r\n", kMax, &req),
            HttpParse::kBad);
  // A colon at position 0 means an empty header name.
  EXPECT_EQ(parse_http_request(
                "GET /x HTTP/1.0\r\n: value\r\n\r\n", kMax, &req),
            HttpParse::kBad);
}

/// Deterministic fuzz: random byte soup (with CRLFs sprinkled in so the
/// terminator is reachable) must never crash the parser and must always
/// return one of the four defined outcomes.
TEST(HttpParseTest, FuzzNeverCrashes) {
  util::Rng rng(0x5eed);
  const char alphabet[] = "GET /azr:\r\n \tHTTP/1.0\x01\x7f\xff";
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.uniform_u64(200);
    std::string data;
    data.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      data.push_back(alphabet[rng.uniform_u64(sizeof(alphabet) - 1)]);
    }
    HttpRequest req;
    const HttpParse r = parse_http_request(data, 128, &req);
    ASSERT_TRUE(r == HttpParse::kNeedMore || r == HttpParse::kOk ||
                r == HttpParse::kBad || r == HttpParse::kTooLarge);
  }
}

// --- Live admin plane ------------------------------------------------------

hash::SparseSignature make_signature(std::uint64_t key,
                                     std::size_t bloom_bits) {
  util::Rng rng(key * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(bloom_bits / 65));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(std::move(bits),
                               static_cast<std::uint32_t>(bloom_bits));
}

class HttpAdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.tier.enabled = true;
    cfg_.tier.background = false;
    pca_ = test::fake_pca();
    index_ = std::make_unique<core::TieredIndex>(cfg_, pca_);
    engine_ = std::make_unique<core::QueryEngine>(*index_);
  }

  void TearDown() override {
    if (admin_ != nullptr) admin_->stop();
    if (server_ != nullptr) server_->stop();
  }

  /// Starts the data plane + the admin plane bound to it.
  void start_both() {
    ServerOptions options;
    options.port = 0;
    server_ = std::make_unique<Server>(*engine_, options);
    ASSERT_TRUE(server_->start().ok());
    admin_ = std::make_unique<HttpAdmin>(*engine_, server_.get(),
                                         HttpAdminOptions{});
    ASSERT_TRUE(admin_->start().ok());
  }

  /// Starts an admin plane with no data-plane server attached.
  void start_admin_only() {
    admin_ = std::make_unique<HttpAdmin>(*engine_, nullptr,
                                         HttpAdminOptions{});
    ASSERT_TRUE(admin_->start().ok());
  }

  std::string get(const std::string& target, int* status) {
    std::string body;
    EXPECT_TRUE(http_get("127.0.0.1", admin_->port(), target, status, &body))
        << target;
    return body;
  }

  core::FastConfig cfg_;
  vision::PcaModel pca_;
  std::unique_ptr<core::TieredIndex> index_;
  std::unique_ptr<core::QueryEngine> engine_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<HttpAdmin> admin_;
};

TEST_F(HttpAdminTest, ServesAllEndpoints) {
  start_both();
  engine_->insert_signature(1, make_signature(1, cfg_.bloom_bits));

  int status = 0;
  std::string body = get("/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  body = get("/readyz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ready\n");

  body = get("/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);
  EXPECT_NE(body.find("process_rss_bytes"), std::string::npos);
  EXPECT_NE(body.find("server_state"), std::string::npos);

  body = get("/varz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"gauges\""), std::string::npos);
  EXPECT_NE(body.find("\"rates\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_s\""), std::string::npos);

  body = get("/statusz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"config_fingerprint\""), std::string::npos);
  EXPECT_NE(body.find("\"tiered\": true"), std::string::npos);
  EXPECT_NE(body.find("\"size\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"state_name\": \"serving\""), std::string::npos);

  body = get("/tracez", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);

  body = get("/", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("/metrics"), std::string::npos);
}

/// Sends raw bytes to the admin port and returns the status-line code
/// (-1 on any failure) — for requests http_get cannot express.
int raw_request(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string head;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n") != std::string::npos) break;
  }
  ::close(fd);
  if (head.rfind("HTTP/", 0) != 0) return -1;
  const std::size_t sp = head.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(head.c_str() + sp + 1);
}

TEST_F(HttpAdminTest, AnswersErrorStatuses) {
  start_admin_only();
  int status = 0;
  get("/nope", &status);
  EXPECT_EQ(status, 404);

  // Query strings are stripped before routing.
  get("/healthz?verbose=1", &status);
  EXPECT_EQ(status, 200);

  // Non-GET method → 405.
  EXPECT_EQ(raw_request(admin_->port(),
                        "POST /metrics HTTP/1.0\r\n\r\n"),
            405);
  // Malformed request line → 400.
  EXPECT_EQ(raw_request(admin_->port(), "GARBAGE\r\n\r\n"), 400);
  // Oversized head → 431.
  std::string big = "GET /metrics HTTP/1.0\r\nX-Pad: ";
  big.append(16384, 'a');
  big += "\r\n\r\n";
  EXPECT_EQ(raw_request(admin_->port(), big), 431);
}

TEST_F(HttpAdminTest, AdminOnlyReadyzAlwaysReady) {
  start_admin_only();
  int status = 0;
  const std::string body = get("/readyz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ready\n");
}

TEST_F(HttpAdminTest, VarzRatesAppearAcrossScrapes) {
  start_both();
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(client.ping().ok());

  int status = 0;
  // First scrape seeds the tracker; a second sees the rate objects.
  get("/varz", &status);
  ASSERT_EQ(status, 200);
  const std::string body = get("/varz", &status);
  ASSERT_EQ(status, 200);
  EXPECT_NE(body.find("\"rate_10s\""), std::string::npos);
  EXPECT_NE(body.find("\"rate_60s\""), std::string::npos);
}

/// The lifecycle ordering the whole readiness story hinges on: entering
/// draining flips /readyz to 503 while the data listener is still up and
/// answering — so a balancer drains routing before the cutoff — and the
/// state gauge walks kServing → kDraining → kStopped monotonically.
TEST_F(HttpAdminTest, ReadyzFlips503BeforeListenerCloses) {
  start_both();
  ASSERT_EQ(server_->state(), ServerState::kServing);

  int status = 0;
  get("/readyz", &status);
  ASSERT_EQ(status, 200);

  server_->enter_draining();
  EXPECT_EQ(server_->state(), ServerState::kDraining);

  std::string body = get("/readyz", &status);
  EXPECT_EQ(status, 503);
  EXPECT_EQ(body, "draining\n");

  // The data plane still accepts and answers while draining.
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  const auto pong = client.ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().status, Status::kOk);

  // enter_draining is idempotent and never moves the state backwards.
  server_->enter_draining();
  EXPECT_EQ(server_->state(), ServerState::kDraining);

  server_->stop();
  EXPECT_EQ(server_->state(), ServerState::kStopped);
  get("/readyz", &status);
  EXPECT_EQ(status, 503);

  // The lifecycle gauge mirrors the final state for scrapers.
  const auto snap = engine_->metrics().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("server.state"), 3.0);
}

TEST_F(HttpAdminTest, StopIsIdempotentAndPortIsEphemeral) {
  start_admin_only();
  EXPECT_NE(admin_->port(), 0u);
  EXPECT_TRUE(admin_->running());
  admin_->stop();
  EXPECT_FALSE(admin_->running());
  admin_->stop();  // idempotent
}

}  // namespace
}  // namespace fast::server
