#include <set>

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/vecmath.hpp"
#include "workload/dataset.hpp"
#include "workload/metadata.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_generator.hpp"
#include "workload/tune.hpp"

namespace fast::workload {
namespace {

// ---------- DatasetSpec ----------

TEST(DatasetSpec, PaperShapes) {
  const DatasetSpec wuhan = DatasetSpec::wuhan(100);
  const DatasetSpec shanghai = DatasetSpec::shanghai(100);
  EXPECT_EQ(wuhan.landmarks, 16u);     // Table II
  EXPECT_EQ(shanghai.landmarks, 22u);  // Table II
  EXPECT_GT(shanghai.mean_file_mb, wuhan.mean_file_mb);
  EXPECT_NE(wuhan.seed, shanghai.seed);
}

// ---------- SceneGenerator ----------

TEST(SceneGenerator, CanonicalViewDeterministic) {
  DatasetSpec spec = DatasetSpec::wuhan(10);
  spec.image_size = 48;
  SceneGenerator gen(spec);
  const img::Image a = gen.canonical_view(3, 1);
  const img::Image b = gen.canonical_view(3, 1);
  ASSERT_EQ(a.pixel_count(), b.pixel_count());
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    EXPECT_EQ(a.pixels()[i], b.pixels()[i]);
  }
}

TEST(SceneGenerator, DifferentLandmarksDiffer) {
  DatasetSpec spec = DatasetSpec::wuhan(10);
  spec.image_size = 48;
  SceneGenerator gen(spec);
  const img::Image a = gen.canonical_view(0, 0);
  const img::Image b = gen.canonical_view(1, 0);
  double diff = 0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    diff += std::abs(a.pixels()[i] - b.pixels()[i]);
  }
  EXPECT_GT(diff / a.pixel_count(), 0.02);
}

TEST(SceneGenerator, ViewsOfSameLandmarkAreDistinctWarps) {
  DatasetSpec spec = DatasetSpec::wuhan(10);
  spec.image_size = 48;
  SceneGenerator gen(spec);
  const img::Image v0 = gen.canonical_view(2, 0);
  const img::Image v1 = gen.canonical_view(2, 1);
  const img::Image v2 = gen.canonical_view(2, 2);
  auto l1 = [&](const img::Image& x, const img::Image& y) {
    double d = 0;
    for (std::size_t i = 0; i < x.pixel_count(); ++i) {
      d += std::abs(x.pixels()[i] - y.pixels()[i]);
    }
    return d;
  };
  // Each viewpoint is a distinct, non-degenerate warp of view 0. (Pixel
  // L1 distance does not separate landmarks — descriptors do; the
  // integration tests cover that.)
  EXPECT_GT(l1(v0, v1), 0.0);
  EXPECT_GT(l1(v0, v2), 0.0);
  EXPECT_GT(l1(v1, v2), 0.0);
}

TEST(SceneGenerator, PortraitVariantsDiffer) {
  DatasetSpec spec = DatasetSpec::wuhan(10);
  spec.image_size = 48;
  SceneGenerator gen(spec);
  const img::Image p0 = gen.child_portrait(0);
  const img::Image p1 = gen.child_portrait(1);
  double diff = 0;
  for (std::size_t i = 0; i < p0.pixel_count(); ++i) {
    diff += std::abs(p0.pixels()[i] - p1.pixels()[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(SceneGenerator, GenerateProducesSpecCount) {
  const Dataset ds = test::small_dataset(25);
  EXPECT_EQ(ds.photos.size(), 25u);
  EXPECT_EQ(ds.landmark_geo.size(), ds.spec.landmarks);
  for (const auto& p : ds.photos) {
    EXPECT_LT(p.landmark, ds.spec.landmarks);
    EXPECT_LT(p.view, ds.spec.views_per_landmark);
    EXPECT_GT(p.file_bytes, 0u);
    EXPECT_EQ(p.image.width(), ds.spec.image_size);
  }
}

TEST(SceneGenerator, DeterministicDataset) {
  const Dataset a = test::small_dataset(10, 42);
  const Dataset b = test::small_dataset(10, 42);
  for (std::size_t i = 0; i < a.photos.size(); ++i) {
    EXPECT_EQ(a.photos[i].landmark, b.photos[i].landmark);
    EXPECT_EQ(a.photos[i].contains_child, b.photos[i].contains_child);
    EXPECT_EQ(a.photos[i].file_bytes, b.photos[i].file_bytes);
  }
}

TEST(SceneGenerator, GeoTagsNearLandmark) {
  const Dataset ds = test::small_dataset(40);
  for (const auto& p : ds.photos) {
    const auto [gx, gy] = ds.landmark_geo[p.landmark];
    EXPECT_NEAR(p.geo_x, gx, 5.0);
    EXPECT_NEAR(p.geo_y, gy, 5.0);
  }
}

TEST(Dataset, ChildPhotoIdsMatchFlags) {
  DatasetSpec spec = DatasetSpec::wuhan(60);
  spec.image_size = 64;
  spec.child_presence_prob = 0.3;
  const Dataset ds = SceneGenerator(spec).generate();
  const auto ids = ds.child_photo_ids();
  EXPECT_GT(ids.size(), 5u);
  std::set<std::uint64_t> idset(ids.begin(), ids.end());
  for (const auto& p : ds.photos) {
    EXPECT_EQ(p.contains_child, idset.count(p.id) > 0);
  }
}

TEST(Dataset, ClusterIdsConsistent) {
  const Dataset ds = test::small_dataset(50);
  const auto ids = ds.cluster_ids(ds.photos[0].landmark, ds.photos[0].view);
  EXPECT_FALSE(ids.empty());
  for (std::uint64_t id : ids) {
    EXPECT_EQ(ds.photos[id].landmark, ds.photos[0].landmark);
    EXPECT_EQ(ds.photos[id].view, ds.photos[0].view);
  }
}

TEST(Dataset, TotalBytesSumsFiles) {
  const Dataset ds = test::small_dataset(10);
  std::size_t sum = 0;
  for (const auto& p : ds.photos) sum += p.file_bytes;
  EXPECT_EQ(ds.total_file_bytes(), sum);
}

// ---------- Query generation ----------

TEST(QueryGen, ChildQueriesCarryGroundTruth) {
  DatasetSpec spec = DatasetSpec::wuhan(40);
  spec.image_size = 64;
  spec.child_presence_prob = 0.25;
  const Dataset ds = SceneGenerator(spec).generate();
  const QuerySet qs = make_child_queries(ds, 5);
  EXPECT_EQ(qs.portraits.size(), 5u);
  EXPECT_EQ(qs.relevant, ds.child_photo_ids());
}

TEST(QueryGen, DupQueriesReferenceRealPhotos) {
  const Dataset ds = test::small_dataset(30);
  const auto queries = make_dup_queries(ds, 10);
  EXPECT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_LT(q.source, ds.photos.size());
    EXPECT_EQ(ds.photos[q.source].landmark, q.landmark);
    // The source photo is always in its own relevant cluster.
    bool found = false;
    for (std::uint64_t id : q.relevant) {
      if (id == q.source) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(QueryGen, DupQueriesDeterministicInSeed) {
  const Dataset ds = test::small_dataset(30);
  const auto a = make_dup_queries(ds, 5, 99);
  const auto b = make_dup_queries(ds, 5, 99);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
  }
}

// ---------- Radius tuning ----------

TEST(Tune, RadiusReflectsNeighborDistance) {
  // Corpus on a grid with spacing 1: query NN distances are <= ~0.5.
  std::vector<std::vector<float>> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back({static_cast<float>(i), 0.f});
  }
  std::vector<std::vector<float>> queries{{2.4f, 0.f}, {5.5f, 0.f}};
  const RadiusTuning t = tune_radius(corpus, queries);
  EXPECT_GT(t.radius, 0.0);
  EXPECT_LE(t.radius, 0.51);
  EXPECT_GT(t.mean_nn_distance, 0.0);
  EXPECT_GE(t.p90_nn_distance, t.mean_nn_distance - 1e-9);
}

TEST(Tune, ProximityChi) {
  EXPECT_DOUBLE_EQ(proximity_chi(2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(proximity_chi(3.0, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(proximity_chi(0.0, 0.0), 1.0);
}

// ---------- Metadata vectors ----------

TEST(Metadata, VectorDimensionStable) {
  FileMeta meta;
  meta.name = "report_1.log";
  meta.extension = "log";
  meta.size_bytes = 4096;
  const MetaVectorConfig cfg;
  const auto v = metadata_vector(meta, cfg);
  EXPECT_EQ(v.size(), 6 + cfg.name_dims);
}

TEST(Metadata, SimilarFilesCloserThanDissimilar) {
  FileMeta a, b, c;
  a.name = "frame_001.jpg";
  a.extension = "jpg";
  a.size_bytes = 1 << 20;
  a.ctime_s = 1000;
  a.mtime_s = 1100;
  a.owner = 2;
  a.depth = 3;
  b = a;
  b.name = "frame_002.jpg";
  b.ctime_s = 1050;
  c.name = "core_dump.bin";
  c.extension = "bin";
  c.size_bytes = 1 << 30;
  c.ctime_s = 9e6;
  c.mtime_s = 9.1e6;
  c.owner = 7;
  c.depth = 9;
  const auto va = metadata_vector(a);
  const auto vb = metadata_vector(b);
  const auto vc = metadata_vector(c);
  EXPECT_LT(util::l2_distance(va, vb), util::l2_distance(va, vc));
}

TEST(Metadata, NamespaceGeneratorClusters) {
  const auto files = generate_namespace(200, 5, 3);
  EXPECT_EQ(files.size(), 200u);
  std::set<std::string> extensions;
  for (const auto& f : files) {
    EXPECT_FALSE(f.name.empty());
    EXPECT_GT(f.mtime_s, f.ctime_s);
    extensions.insert(f.extension);
  }
  // 5 clusters -> at most 5 distinct extensions (clusters share them).
  EXPECT_LE(extensions.size(), 5u);
}

}  // namespace
}  // namespace fast::workload
