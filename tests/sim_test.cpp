#include <gtest/gtest.h>

#include "sim/cluster_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/energy_model.hpp"
#include "sim/sim_clock.hpp"

namespace fast::sim {
namespace {

// ---------- CostModel ----------

TEST(CostModel, DiskReadIncludesSeekAndTransfer) {
  CostModel cost;
  const double t = cost.disk_read_s(cost.disk_page_bytes);
  EXPECT_GT(t, cost.disk_seek_s);
  EXPECT_LT(t, cost.disk_seek_s + 1e-3);
}

TEST(CostModel, LargerReadsTakeLonger) {
  CostModel cost;
  EXPECT_LT(cost.disk_read_s(4096), cost.disk_read_s(1 << 20));
}

TEST(CostModel, NetworkTransferScalesWithBytes) {
  CostModel cost;
  const double small = cost.net_transfer_s(1000);
  const double large = cost.net_transfer_s(1000000);
  EXPECT_LT(small, large);
  EXPECT_GT(small, cost.net_rtt_s);
}

// ---------- SimClock ----------

TEST(SimClock, AccumulatesCharges) {
  SimClock clock;
  clock.charge(1.5);
  clock.charge(0.5);
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), 2.0);
}

TEST(SimClock, NegativeChargeIgnored) {
  SimClock clock;
  clock.charge(-1.0);
  EXPECT_EQ(clock.elapsed_s(), 0.0);
}

TEST(SimClock, CountersTrackEvents) {
  SimClock clock;
  clock.charge_disk_read(0.01);
  clock.charge_disk_write(0.01);
  clock.charge_hash(1e-8, 5);
  clock.charge_flops(1e-9, 100);
  clock.charge_ram(1e-7, 3);
  EXPECT_EQ(clock.disk_reads(), 1u);
  EXPECT_EQ(clock.disk_writes(), 1u);
  EXPECT_EQ(clock.hash_ops(), 5u);
  EXPECT_EQ(clock.flops(), 100u);
  EXPECT_EQ(clock.ram_accesses(), 3u);
}

TEST(SimClock, MergeAddsEverything) {
  SimClock a, b;
  a.charge_disk_read(0.1);
  b.charge_disk_read(0.2);
  b.charge_hash(1e-8, 7);
  a.merge(b);
  EXPECT_NEAR(a.elapsed_s(), 0.3 + 7e-8, 1e-12);
  EXPECT_EQ(a.disk_reads(), 2u);
  EXPECT_EQ(a.hash_ops(), 7u);
}

TEST(SimClock, ResetClears) {
  SimClock clock;
  clock.charge_disk_read(1.0);
  clock.reset();
  EXPECT_EQ(clock.elapsed_s(), 0.0);
  EXPECT_EQ(clock.disk_reads(), 0u);
}

// ---------- ClusterModel ----------

TEST(ClusterModel, MakespanSerialIsSum) {
  EXPECT_DOUBLE_EQ(ClusterModel::makespan({1, 2, 3}, 1), 6.0);
}

TEST(ClusterModel, MakespanFullyParallelIsMax) {
  EXPECT_DOUBLE_EQ(ClusterModel::makespan({1, 2, 3}, 3), 3.0);
}

TEST(ClusterModel, MakespanEmptyIsZero) {
  EXPECT_EQ(ClusterModel::makespan({}, 4), 0.0);
}

TEST(ClusterModel, MakespanNeverBelowMaxTask) {
  const double mk = ClusterModel::makespan({10, 1, 1, 1}, 4);
  EXPECT_GE(mk, 10.0);
}

TEST(ClusterModel, MakespanMonotoneInSlots) {
  const std::vector<double> tasks{3, 1, 4, 1, 5, 9, 2, 6};
  double prev = ClusterModel::makespan(tasks, 1);
  for (std::size_t s = 2; s <= 8; ++s) {
    const double mk = ClusterModel::makespan(tasks, s);
    EXPECT_LE(mk, prev + 1e-12);
    prev = mk;
  }
}

TEST(ClusterModel, MakespanNearLinearSpeedupForUniformTasks) {
  // 64 equal tasks over k slots: makespan = 64/k exactly when k divides 64.
  std::vector<double> tasks(64, 1.0);
  EXPECT_DOUBLE_EQ(ClusterModel::makespan(tasks, 4), 16.0);
  EXPECT_DOUBLE_EQ(ClusterModel::makespan(tasks, 16), 4.0);
  EXPECT_DOUBLE_EQ(ClusterModel::makespan(tasks, 64), 1.0);
}

TEST(ClusterModel, MeanCompletionSingleSlotQueues) {
  // FIFO on one slot: completions 1, 3, 6 -> mean 10/3.
  EXPECT_NEAR(ClusterModel::mean_completion({1, 2, 3}, 1), 10.0 / 3, 1e-12);
}

TEST(ClusterModel, MeanCompletionManySlotsIsMeanTask) {
  EXPECT_NEAR(ClusterModel::mean_completion({1, 2, 3}, 3), 2.0, 1e-12);
}

TEST(ClusterModel, MeanCompletionEmptyIsZero) {
  EXPECT_EQ(ClusterModel::mean_completion({}, 2), 0.0);
}

TEST(ClusterModel, TotalCores) {
  CostModel cost;
  cost.nodes = 4;
  cost.cores_per_node = 8;
  ClusterModel cluster(cost);
  EXPECT_EQ(cluster.total_cores(), 32u);
}

// ---------- EnergyModel ----------

TEST(EnergyModel, TransmitScalesWithBytes) {
  EnergyModel e;
  const double one_kb = e.transmit_joule(1024);
  const double one_mb = e.transmit_joule(1 << 20);
  EXPECT_LT(one_kb, one_mb);
  EXPECT_GT(one_kb, e.tx_tail_joule);  // tail energy always paid
}

TEST(EnergyModel, ComputeScalesWithTime) {
  EnergyModel e;
  EXPECT_DOUBLE_EQ(e.compute_joule(2.0), 2.0 * e.cpu_joule_per_s);
}

TEST(EnergyModel, IdleScalesWithTime) {
  EnergyModel e;
  EXPECT_DOUBLE_EQ(e.idle_joule(10.0), 10.0 * e.idle_watt);
}

}  // namespace
}  // namespace fast::sim
