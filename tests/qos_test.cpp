// Multi-tenant QoS tests (DESIGN.md §3i): exact-count quota enforcement,
// weighted two-lane dispatch, the adaptive retry-after hint, draining
// rejections, legacy tenant-less clients — plus wire-protocol property
// tests (random chunking, truncation, byte flips) and the load driver's
// ceil-rank percentile math.
//
// Determinism: every admission/ordering assertion uses the test-only
// worker hold (ServerOptions::debug_hold_workers) and the lane-depth
// accessor, so outcomes are proven by exact counts — wall-clock sleeps
// only ever wait for asynchronous delivery, never decide an assertion.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.hpp"
#include "load_driver.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "test_helpers.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace fast::server {
namespace {

core::FastConfig small_config() {
  core::FastConfig cfg;
  cfg.cuckoo.capacity = 256;
  return cfg;
}

hash::SparseSignature make_signature(std::uint64_t key,
                                     std::size_t bloom_bits,
                                     std::size_t popcount = 96) {
  util::Rng rng(key * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  const std::uint32_t max_step =
      static_cast<std::uint32_t>(bloom_bits / (popcount + 1));
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(max_step));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(std::move(bits),
                               static_cast<std::uint32_t>(bloom_bits));
}

/// Bounded wait for asynchronous I/O-thread admission to land; the
/// assertion itself is always an exact count afterwards.
bool wait_for_lane_depth(const Server& server, Lane lane, std::size_t want) {
  for (int i = 0; i < 5000; ++i) {
    if (server.debug_lane_depth(lane) == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// --- The pure retry-after formula -------------------------------------------

TEST(QosRetryFormulaTest, EmptyLaneOrNoHistoryYieldsExactlyBase) {
  EXPECT_EQ(compute_retry_after_ms(0, 0.0, 10, 1000), 10u);
  EXPECT_EQ(compute_retry_after_ms(0, 5000.0, 10, 1000), 10u);
  EXPECT_EQ(compute_retry_after_ms(37, 0.0, 10, 1000), 10u);
}

TEST(QosRetryFormulaTest, MonotoneInDepthAndServiceTime) {
  std::uint32_t prev = 0;
  for (std::size_t depth = 0; depth <= 64; ++depth) {
    const std::uint32_t hint =
        compute_retry_after_ms(depth, 2000.0, 10, 100000);
    EXPECT_GE(hint, prev) << "depth " << depth;
    EXPECT_GE(hint, 10u);
    prev = hint;
  }
  // Strictly increasing when each queued item is worth >= 1ms.
  EXPECT_GT(compute_retry_after_ms(2, 2000.0, 10, 100000),
            compute_retry_after_ms(1, 2000.0, 10, 100000));
  EXPECT_GT(compute_retry_after_ms(5, 8000.0, 10, 100000),
            compute_retry_after_ms(5, 2000.0, 10, 100000));
}

TEST(QosRetryFormulaTest, ClampsToMaxAndHandlesDegenerateBounds) {
  EXPECT_EQ(compute_retry_after_ms(1000, 50000.0, 10, 250), 250u);
  // max below base degrades to base (never below the floor).
  EXPECT_EQ(compute_retry_after_ms(0, 0.0, 40, 5), 40u);
  // NaN/negative EWMA is treated as no history.
  EXPECT_EQ(compute_retry_after_ms(9, -1.0, 10, 1000), 10u);
}

TEST(QosRetryFormulaTest, LaneClassification) {
  EXPECT_EQ(lane_of(Op::kPing), Lane::kQuery);
  EXPECT_EQ(lane_of(Op::kQuery), Lane::kQuery);
  EXPECT_EQ(lane_of(Op::kQueryBatch), Lane::kQuery);
  EXPECT_EQ(lane_of(Op::kMetrics), Lane::kQuery);
  EXPECT_EQ(lane_of(Op::kHello), Lane::kQuery);
  EXPECT_EQ(lane_of(Op::kInsert), Lane::kBulk);
  EXPECT_EQ(lane_of(Op::kInsertBatch), Lane::kBulk);
  EXPECT_EQ(lane_of(Op::kErase), Lane::kBulk);
  EXPECT_EQ(lane_of(Op::kEraseBatch), Lane::kBulk);
}

// --- Load-driver percentile math --------------------------------------------

TEST(QosPercentileTest, EmptyAndSingleSample) {
  EXPECT_DOUBLE_EQ(bench::percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(bench::percentile({}, 99.9), 0.0);
  const std::vector<double> one = {3.25};
  EXPECT_DOUBLE_EQ(bench::percentile(one, 50.0), 3.25);
  EXPECT_DOUBLE_EQ(bench::percentile(one, 99.0), 3.25);
  EXPECT_DOUBLE_EQ(bench::percentile(one, 99.9), 3.25);
}

TEST(QosPercentileTest, CeilRankOverUniformSamples) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  // Ceil-rank: p50 over 100 samples is the 50th, p99 the 99th, p99.9 the
  // 100th (rank 99.9 rounds up).
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 99.9), 100.0);
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 100.0), 100.0);
  // Two samples: ceil(0.5 * 2) = rank 1 — the lower one.
  EXPECT_DOUBLE_EQ(bench::percentile({1.0, 9.0}, 50.0), 1.0);
}

TEST(QosPercentileTest, TieHeavySamples) {
  // 990 ties at 1ms and a 10-sample tail at 50ms: p50 sits in the ties,
  // p99 exactly at the boundary sample, p99.9 in the tail.
  std::vector<double> sorted(990, 1.0);
  sorted.insert(sorted.end(), 10, 50.0);
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 99.0), 1.0);   // rank 990
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 99.1), 50.0);  // rank 991
  EXPECT_DOUBLE_EQ(bench::percentile(sorted, 99.9), 50.0);
}

TEST(QosPercentileTest, SeededSignaturesAreReproducible) {
  // The --seed contract: the same key always synthesizes the same
  // signature, so seeded runs replay identical wire bytes.
  const auto a = bench::synth_signature(1234, 16384, 64);
  const auto b = bench::synth_signature(1234, 16384, 64);
  EXPECT_EQ(a.set_bits(), b.set_bits());
  EXPECT_NE(a.set_bits(), bench::synth_signature(1235, 16384, 64).set_bits());
}

// --- Protocol property tests ------------------------------------------------

std::vector<std::vector<std::uint8_t>> sample_bodies() {
  std::vector<std::vector<std::uint8_t>> bodies;
  bodies.push_back(encode_ping(1));
  bodies.push_back(encode_hello(2, 42));
  bodies.push_back(encode_insert(3, 7, make_signature(7, 4096)));
  const std::vector<std::uint64_t> ids = {5, 6, 7};
  const std::vector<hash::SparseSignature> sigs = {
      make_signature(5, 4096), make_signature(6, 4096),
      make_signature(7, 4096)};
  bodies.push_back(encode_insert_batch(4, ids, sigs));
  bodies.push_back(encode_query(5, 10, make_signature(9, 4096)));
  bodies.push_back(encode_query_batch(6, 3, sigs));
  bodies.push_back(encode_erase(7, 11));
  bodies.push_back(encode_erase_batch(8, ids));
  bodies.push_back(encode_metrics(9));
  return bodies;
}

TEST(QosProtocolPropertyTest, AssemblerRecoversFramesAtRandomChunkings) {
  const auto bodies = sample_bodies();
  std::vector<std::uint8_t> stream;
  for (const auto& body : bodies) {
    const auto framed = frame(body);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  util::Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    FrameAssembler assembler;
    std::vector<std::vector<std::uint8_t>> got;
    std::vector<std::uint8_t> body;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n = std::min<std::size_t>(
          1 + rng.uniform_u64(7), stream.size() - off);
      assembler.feed({stream.data() + off, n});
      off += n;
      while (assembler.next(&body)) got.push_back(body);
    }
    ASSERT_FALSE(assembler.error());
    ASSERT_EQ(got.size(), bodies.size()) << "round " << round;
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      EXPECT_EQ(got[i], bodies[i]) << "round " << round << " frame " << i;
    }
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST(QosProtocolPropertyTest, EveryStrictTruncationFailsSoft) {
  for (const auto& body : sample_bodies()) {
    for (std::size_t len = 0; len < body.size(); ++len) {
      const std::span<const std::uint8_t> prefix{body.data(), len};
      Request req;
      std::string error;
      EXPECT_FALSE(decode_request(prefix, &req, &error))
          << "len " << len << " of " << body.size();
    }
    // The full body still parses.
    Request req;
    std::string error;
    EXPECT_TRUE(decode_request(body, &req, &error)) << error;
  }
}

TEST(QosProtocolPropertyTest, ByteFlipsNeverCrashDecoders) {
  util::Rng rng(1337);
  for (const auto& body : sample_bodies()) {
    for (int flip = 0; flip < 200; ++flip) {
      std::vector<std::uint8_t> mutated = body;
      const std::size_t pos = rng.uniform_u64(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
      Request req;
      std::string error;
      // Fail-soft contract: either a clean parse of something else or a
      // clean rejection — never a crash, over-read or throw (ASan/UBSan
      // runs of this test enforce the memory half).
      (void)decode_request(mutated, &req, &error);
    }
  }
  // The tenant field specifically: every 16-bit value round-trips, and a
  // hello truncated inside the tenant field is rejected.
  for (std::uint32_t tenant = 0; tenant <= 0xffff; tenant += 257) {
    const auto body = encode_hello(1, static_cast<std::uint16_t>(tenant));
    Request req;
    std::string error;
    ASSERT_TRUE(decode_request(body, &req, &error));
    EXPECT_EQ(req.tenant, tenant);
    EXPECT_FALSE(decode_request({body.data(), body.size() - 1}, &req,
                                &error));
  }
}

TEST(QosProtocolPropertyTest, RandomGarbageNeverCrashesResponseDecoder) {
  util::Rng rng(4242);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> garbage(rng.uniform_u64(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    Request req;
    Response resp;
    std::string error;
    (void)decode_request(garbage, &req, &error);
    (void)decode_response(garbage, &resp, &error);
  }
  // kShuttingDown round-trips its adaptive hint + message.
  Response in;
  in.op = Op::kQuery;
  in.seq = 12;
  in.status = Status::kShuttingDown;
  in.retry_after_ms = 321;
  in.text = "shutting down";
  Response out;
  std::string error;
  ASSERT_TRUE(decode_response(encode_response(in), &out, &error)) << error;
  EXPECT_EQ(out.status, Status::kShuttingDown);
  EXPECT_EQ(out.retry_after_ms, 321u);
  EXPECT_EQ(out.text, "shutting down");
}

// --- Loopback QoS -----------------------------------------------------------

class QosServerTest : public ::testing::Test {
 protected:
  void start(ServerOptions options) {
    cfg_ = small_config();
    pca_ = test::fake_pca();
    flat_ = std::make_unique<core::FastIndex>(cfg_, pca_);
    engine_ = std::make_unique<core::QueryEngine>(*flat_);
    options.port = 0;
    server_ = std::make_unique<Server>(*engine_, options);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
  }

  double counter(const std::string& name) {
    return static_cast<double>(engine_->metrics().counter(name).value());
  }

  core::FastConfig cfg_;
  vision::PcaModel pca_;
  std::unique_ptr<core::FastIndex> flat_;
  std::unique_ptr<core::QueryEngine> engine_;
  std::unique_ptr<Server> server_;
};

/// Token bucket, exact counts: burst 3 with a negligible refill rate
/// admits exactly 3 of 10 pipelined requests — regardless of timing,
/// because the worker pool is held while the bucket decides.
TEST_F(QosServerTest, TokenBucketAdmitsExactlyBurst) {
  ServerOptions options;
  options.workers = 1;
  options.debug_hold_workers = true;
  options.tenant_rate = 1e-9;  // ~0: no refill within the test
  options.tenant_burst = 3.0;
  start(options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  const auto hello = client.hello(5);
  ASSERT_TRUE(hello.ok());
  ASSERT_EQ(hello.value().status, Status::kOk);

  const int kSent = 10;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client.send(encode_ping(100 + i)).ok());
  }
  // Rejections are answered immediately, ahead of the held lane; the 7th
  // arriving proves every frame was processed.
  for (int i = 0; i < kSent - 3; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    ASSERT_EQ(response.status, Status::kRetryAfter) << i;
  }
  EXPECT_EQ(server_->debug_lane_depth(Lane::kQuery), 3u);
  EXPECT_EQ(counter("server.tenant.5.requests"), 10.0);
  EXPECT_EQ(counter("server.tenant.5.rejected"), 7.0);

  server_->debug_hold_workers(false);
  for (int i = 0; i < 3; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    EXPECT_EQ(response.status, Status::kOk);
    // The bucket admits in arrival order: seqs 100..102.
    EXPECT_EQ(response.seq, 100u + static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(counter("server.tenant.5.ops"), 3.0);
}

/// The tenant admitted-inflight window caps at exactly `inflight`, and
/// window rejections carry the adaptive hint — exactly base here, since
/// nothing has completed yet (EWMA is empty).
TEST_F(QosServerTest, TenantInflightWindowEnforcedWithExactHint) {
  ServerOptions options;
  options.workers = 1;
  options.debug_hold_workers = true;
  options.tenant_inflight = 2;
  options.retry_after_ms = 11;
  start(options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  ASSERT_EQ(client.hello(9).value().status, Status::kOk);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send(encode_ping(200 + i)).ok());
  }
  for (int i = 0; i < 3; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    ASSERT_EQ(response.status, Status::kRetryAfter);
    EXPECT_EQ(response.retry_after_ms, 11u);  // base exactly: no history
  }
  EXPECT_EQ(server_->debug_lane_depth(Lane::kQuery), 2u);
  server_->debug_hold_workers(false);
  for (int i = 0; i < 2; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    EXPECT_EQ(response.status, Status::kOk);
  }
}

/// Weighted two-lane dispatch, exact drain order: with both lanes loaded
/// and query_weight=2, a single released worker must drain
/// Q Q B Q Q B Q Q B B B B — queries overtake bulk, bulk is never starved
/// (its first item completes by position 3), and a lone backlogged lane
/// drains at full speed.
TEST_F(QosServerTest, WeightedLaneDispatchExactOrder) {
  ServerOptions options;
  options.workers = 1;
  options.query_weight = 2;
  options.debug_hold_workers = true;
  start(options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t id = 1 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(client
                    .send(encode_insert(300 + i, id,
                                        make_signature(id, cfg_.bloom_bits)))
                    .ok());
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.send(encode_ping(400 + i)).ok());
  }
  ASSERT_TRUE(wait_for_lane_depth(*server_, Lane::kBulk, 6));
  ASSERT_TRUE(wait_for_lane_depth(*server_, Lane::kQuery, 6));

  server_->debug_hold_workers(false);
  // One worker, one connection: response order is execution order.
  const std::string want = "QQBQQBQQBBBB";
  std::string got;
  for (int i = 0; i < 12; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    ASSERT_EQ(response.status, Status::kOk) << i;
    got.push_back(response.op == Op::kPing ? 'Q' : 'B');
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(counter("server.lane.query.executed"), 6.0);
  EXPECT_EQ(counter("server.lane.bulk.executed"), 6.0);
}

/// The adaptive hint is strictly increasing in injected queue depth (the
/// EWMA is pinned by one completed request, then the held lane is loaded
/// one request at a time) and always within [base, max].
TEST_F(QosServerTest, AdaptiveRetryAfterMonotoneInQueueDepth) {
  ServerOptions options;
  options.workers = 1;
  options.retry_after_ms = 5;
  options.retry_max_ms = 1000;
  options.debug_request_delay_us = 3000;  // EWMA >= 3ms per queued item
  start(options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  ASSERT_EQ(client.ping().value().status, Status::kOk);  // seeds the EWMA
  EXPECT_EQ(server_->current_retry_after_ms(Lane::kQuery), 5u);  // depth 0

  server_->debug_hold_workers(true);
  std::vector<std::uint32_t> hints;
  for (std::size_t depth = 1; depth <= 6; ++depth) {
    ASSERT_TRUE(client.send(encode_ping(500 + depth)).ok());
    ASSERT_TRUE(wait_for_lane_depth(*server_, Lane::kQuery, depth));
    hints.push_back(server_->current_retry_after_ms(Lane::kQuery));
  }
  for (std::size_t i = 0; i < hints.size(); ++i) {
    EXPECT_GE(hints[i], options.retry_after_ms) << i;
    EXPECT_LE(hints[i], options.retry_max_ms) << i;
    if (i > 0) {
      EXPECT_GT(hints[i], hints[i - 1]) << i;
    }
  }
  // The bulk lane is empty and shares no backlog: its hint stays at base.
  EXPECT_EQ(server_->current_retry_after_ms(Lane::kBulk), 5u);
  server_->debug_hold_workers(false);
  for (int i = 0; i < 6; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    EXPECT_EQ(response.status, Status::kOk);
  }
}

/// A client that never sends kHello — every pre-QoS client — is served
/// unchanged and accounted to the default tenant 0.
TEST_F(QosServerTest, LegacyClientWithoutHelloIsServed) {
  ServerOptions options;
  start(options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  ASSERT_EQ(client.ping().value().status, Status::kOk);
  const auto sig = make_signature(1, cfg_.bloom_bits);
  ASSERT_EQ(client.insert(1, sig).value().status, Status::kOk);
  const auto got = client.query(sig, 1);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().status, Status::kOk);
  ASSERT_EQ(got.value().results.size(), 1u);
  ASSERT_FALSE(got.value().results[0].empty());
  EXPECT_EQ(got.value().results[0][0].id, 1u);
  EXPECT_GE(counter("server.tenant.0.requests"), 3.0);
  EXPECT_EQ(counter("server.tenant.0.rejected"), 0.0);

  // The per-tenant series export alongside the rest of the registry.
  const auto scrape = client.metrics();
  ASSERT_TRUE(scrape.ok());
  EXPECT_NE(scrape.value().text.find("server_tenant_0_requests"),
            std::string::npos);
}

/// Regression (draining rejections): a frame arriving during stop() is
/// answered kShuttingDown with the adaptive hint attached and counted as
/// server.rejected_draining — not dropped, not given a bare status.
TEST_F(QosServerTest, DrainingRejectionCarriesHintAndIsCounted) {
  ServerOptions options;
  options.workers = 1;
  options.retry_after_ms = 8;
  options.retry_max_ms = 500;
  options.debug_request_delay_us = 100000;  // 100ms: holds the drain open
  start(options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  // Two admitted requests keep the server draining for ~200ms.
  ASSERT_TRUE(client.send(encode_ping(600)).ok());
  ASSERT_TRUE(client.send(encode_ping(601)).ok());

  std::thread stopper([this] { server_->stop(); });
  while (server_->running()) std::this_thread::yield();

  bool saw_draining = false;
  for (std::uint64_t attempt = 0; attempt < 10 && !saw_draining; ++attempt) {
    const std::uint64_t seq = 700 + attempt;
    if (!client.send(encode_ping(seq)).ok()) break;
    Response response;
    bool got_ours = false;
    while (!got_ours) {
      if (!client.recv(&response).ok()) break;
      got_ours = response.seq == seq;
    }
    if (!got_ours) break;
    if (response.status == Status::kShuttingDown) {
      saw_draining = true;
      EXPECT_GE(response.retry_after_ms, options.retry_after_ms);
      EXPECT_LE(response.retry_after_ms, options.retry_max_ms);
    } else {
      // Lost the running_->draining_ store race: the ping was admitted.
      EXPECT_EQ(response.status, Status::kOk);
    }
  }
  stopper.join();
  EXPECT_TRUE(saw_draining);
  EXPECT_GE(counter("server.rejected_draining"), 1.0);
  EXPECT_FALSE(server_->running());
}

}  // namespace
}  // namespace fast::server
