#include <cmath>

#include <gtest/gtest.h>

#include "img/draw.hpp"
#include "img/transform.hpp"
#include "util/rng.hpp"
#include "util/vecmath.hpp"
#include "vision/dog_detector.hpp"
#include "vision/gaussian.hpp"
#include "vision/matcher.hpp"
#include "vision/pca.hpp"
#include "vision/pca_sift.hpp"
#include "vision/pyramid.hpp"
#include "vision/sift_descriptor.hpp"

namespace fast::vision {
namespace {

img::Image textured_image(std::size_t n, std::uint64_t seed) {
  img::Image im(n, n, 0.5f);
  img::add_texture(im, 0, 0, static_cast<std::ptrdiff_t>(n),
                   static_cast<std::ptrdiff_t>(n), 0.25f, seed);
  img::scatter_blobs(im, 0, 0, static_cast<std::ptrdiff_t>(n),
                     static_cast<std::ptrdiff_t>(n), n / 2, 1.5, 3.0,
                     seed ^ 0xb10b);
  im.clamp01();
  return im;
}

// ---------- Gaussian ----------

TEST(Gaussian, KernelIsNormalized) {
  for (double sigma : {0.5, 1.0, 2.3}) {
    const auto k = gaussian_kernel(sigma);
    double sum = 0;
    for (float v : k) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(k.size() % 2, 1u);  // odd length
  }
}

TEST(Gaussian, KernelIsSymmetricAndPeaked) {
  const auto k = gaussian_kernel(1.5);
  const std::size_t mid = k.size() / 2;
  for (std::size_t i = 0; i < mid; ++i) {
    EXPECT_FLOAT_EQ(k[i], k[k.size() - 1 - i]);
    EXPECT_LT(k[i], k[mid]);
  }
}

TEST(Gaussian, BlurPreservesConstantImage) {
  img::Image im(16, 16, 0.42f);
  const img::Image out = gaussian_blur(im, 2.0);
  for (float p : out.pixels()) EXPECT_NEAR(p, 0.42f, 1e-5);
}

TEST(Gaussian, BlurReducesVariance) {
  img::Image im = textured_image(32, 1);
  const img::Image out = gaussian_blur(im, 2.0);
  auto variance = [](const img::Image& x) {
    double mean = 0;
    for (float p : x.pixels()) mean += p;
    mean /= static_cast<double>(x.pixel_count());
    double var = 0;
    for (float p : x.pixels()) var += (p - mean) * (p - mean);
    return var / static_cast<double>(x.pixel_count());
  };
  EXPECT_LT(variance(out), variance(im) * 0.8);
}

TEST(Gaussian, SubtractComputesDifference) {
  img::Image a(2, 2, 0.75f), b(2, 2, 0.25f);
  const img::Image d = subtract(a, b);
  for (float p : d.pixels()) EXPECT_FLOAT_EQ(p, 0.5f);
}

// ---------- Pyramid ----------

TEST(Pyramid, LevelAndOctaveCounts) {
  const img::Image im = textured_image(64, 2);
  PyramidConfig cfg;
  cfg.octaves = 3;
  cfg.scales_per_octave = 3;
  const Pyramid pyr = build_pyramid(im, cfg);
  ASSERT_GE(pyr.octaves.size(), 2u);
  for (const Octave& o : pyr.octaves) {
    EXPECT_EQ(o.gaussians.size(), 6u);  // s + 3
    EXPECT_EQ(o.dogs.size(), 5u);       // s + 2
  }
}

TEST(Pyramid, OctavesHalveResolution) {
  const img::Image im = textured_image(64, 3);
  const Pyramid pyr = build_pyramid(im);
  for (std::size_t o = 1; o < pyr.octaves.size(); ++o) {
    EXPECT_EQ(pyr.octaves[o].gaussians[0].width(),
              pyr.octaves[o - 1].gaussians[0].width() / 2);
    EXPECT_EQ(pyr.octaves[o].downsample, pyr.octaves[o - 1].downsample * 2);
  }
}

TEST(Pyramid, StopsBelowMinDimension) {
  const img::Image im = textured_image(32, 4);
  PyramidConfig cfg;
  cfg.octaves = 10;
  cfg.min_dimension = 16;
  const Pyramid pyr = build_pyramid(im, cfg);
  EXPECT_LE(pyr.octaves.size(), 2u);
}

// ---------- DoG detector ----------

TEST(DogDetector, FindsIsolatedBlob) {
  img::Image im(48, 48, 0.2f);
  img::fill_circle(im, 24, 24, 3.0, 1.0f);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  // The strongest keypoint should sit on the blob.
  EXPECT_NEAR(kps[0].x, 24.0, 2.5);
  EXPECT_NEAR(kps[0].y, 24.0, 2.5);
}

TEST(DogDetector, ScaleTracksBlobSize) {
  auto blob_scale = [](double radius) {
    img::Image im(64, 64, 0.2f);
    img::fill_circle(im, 32, 32, radius, 1.0f);
    const auto kps = detect_keypoints(im);
    EXPECT_FALSE(kps.empty());
    return kps.empty() ? 0.0 : kps[0].sigma;
  };
  EXPECT_LT(blob_scale(3.0), blob_scale(6.0));
}

TEST(DogDetector, EmptyOnFlatImage) {
  img::Image im(48, 48, 0.5f);
  EXPECT_TRUE(detect_keypoints(im).empty());
}

TEST(DogDetector, SortedByResponse) {
  const img::Image im = textured_image(64, 5);
  const auto kps = detect_keypoints(im);
  for (std::size_t i = 1; i < kps.size(); ++i) {
    EXPECT_GE(kps[i - 1].response, kps[i].response);
  }
}

TEST(DogDetector, MaxKeypointsRespected) {
  const img::Image im = textured_image(96, 6);
  DogConfig cfg;
  cfg.max_keypoints = 5;
  EXPECT_LE(detect_keypoints(im, cfg).size(), 5u);
}

TEST(DogDetector, RepeatabilityUnderSmallShift) {
  const img::Image im = textured_image(64, 7);
  img::Affine t;
  t.tx = 2.0;  // content shifts left 2px
  const img::Image shifted = img::warp_affine(im, t);
  const auto a = detect_keypoints(im);
  const auto b = detect_keypoints(shifted);
  ASSERT_FALSE(a.empty());
  std::size_t matched = 0;
  for (const auto& ka : a) {
    for (const auto& kb : b) {
      if (std::hypot(ka.x - 2.0 - kb.x, ka.y - kb.y) < 2.0) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(matched) / a.size(), 0.5);
}

TEST(DogDetector, OrientationFollowsRotation) {
  // A step edge's dominant gradient orientation rotates with the image.
  img::Image im(48, 48, 0.2f);
  img::fill_rect(im, 0, 0, 24, 48, 0.9f);
  const double o1 = dominant_orientation(im, 24, 24, 2.0);
  img::Image rot = img::warp_affine(
      im, img::Affine::similarity(M_PI / 2, 1.0, 24, 24));
  const double o2 = dominant_orientation(rot, 24, 24, 2.0);
  double delta = std::fabs(o2 - o1);
  if (delta > M_PI) delta = 2 * M_PI - delta;
  EXPECT_NEAR(delta, M_PI / 2, 0.3);
}

// ---------- SIFT descriptor ----------

TEST(Sift, DescriptorDimension) {
  const img::Image im = textured_image(64, 8);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  const auto d = compute_sift(im, kps[0]);
  EXPECT_EQ(d.size(), static_cast<std::size_t>(kSiftDim));
}

TEST(Sift, DescriptorIsUnitNorm) {
  const img::Image im = textured_image(64, 9);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  const auto d = compute_sift(im, kps[0]);
  EXPECT_NEAR(util::l2_norm(d), 1.0, 1e-4);
}

TEST(Sift, ComponentsClamped) {
  const img::Image im = textured_image(64, 10);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  SiftConfig cfg;
  const auto d = compute_sift(im, kps[0], cfg);
  for (float v : d) {
    EXPECT_GE(v, 0.0f);
    // Post-clamp renormalization can push values slightly above the clamp.
    EXPECT_LE(v, cfg.clamp * 1.5f);
  }
}

TEST(Sift, IdenticalKeypointsGiveIdenticalDescriptors) {
  const img::Image im = textured_image(64, 11);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  const auto d1 = compute_sift(im, kps[0]);
  const auto d2 = compute_sift(im, kps[0]);
  EXPECT_EQ(d1, d2);
}

TEST(Sift, InvariantToIlluminationGain) {
  const img::Image im = textured_image(64, 12);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  img::Image bright = im;
  // Pure gain without clamping distortion (values stay in range).
  for (float& p : bright.pixels()) p *= 0.8f;
  const auto d1 = compute_sift(im, kps[0]);
  const auto d2 = compute_sift(bright, kps[0]);
  EXPECT_LT(util::l2_distance(d1, d2), 0.05);
}

TEST(Sift, DescriptorChangesAcrossKeypoints) {
  const img::Image im = textured_image(64, 13);
  const auto kps = detect_keypoints(im);
  ASSERT_GE(kps.size(), 2u);
  const auto d1 = compute_sift(im, kps[0]);
  const auto d2 = compute_sift(im, kps[1]);
  EXPECT_GT(util::l2_distance(d1, d2), 0.1);
}

TEST(Sift, ExtractFeaturesBundlesKeypointAndDescriptor) {
  const img::Image im = textured_image(64, 14);
  const auto feats = extract_sift_features(im, 16);
  ASSERT_FALSE(feats.empty());
  EXPECT_LE(feats.size(), 16u);
  for (const auto& f : feats) {
    EXPECT_EQ(f.descriptor.size(), static_cast<std::size_t>(kSiftDim));
  }
}

// ---------- PCA ----------

TEST(Pca, JacobiDiagonalMatrix) {
  // diag(3, 1) -> eigenvalues {3, 1} with axis eigenvectors.
  std::vector<double> m{3, 0, 0, 1};
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  jacobi_eigen_symmetric(m, 2, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-10);
  EXPECT_NEAR(evals[1], 1.0, 1e-10);
  EXPECT_NEAR(std::fabs(evecs[0][0]), 1.0, 1e-10);
}

TEST(Pca, JacobiKnown2x2) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  std::vector<double> m{2, 1, 1, 2};
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  jacobi_eigen_symmetric(m, 2, evals, evecs);
  EXPECT_NEAR(evals[0], 3.0, 1e-10);
  EXPECT_NEAR(evals[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(evecs[0][0] / evecs[0][1]), 1.0, 1e-8);
}

TEST(Pca, EigenvaluesDescendAndNonNegative) {
  util::Rng rng(15);
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 50; ++i) {
    std::vector<float> s(8);
    for (auto& v : s) v = static_cast<float>(rng.gaussian());
    samples.push_back(std::move(s));
  }
  const PcaModel model = train_pca(samples, 8);
  for (std::size_t i = 1; i < model.eigenvalues.size(); ++i) {
    EXPECT_GE(model.eigenvalues[i - 1], model.eigenvalues[i]);
    EXPECT_GE(model.eigenvalues[i], 0.0f);
  }
}

TEST(Pca, ComponentsAreOrthonormal) {
  util::Rng rng(16);
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 60; ++i) {
    std::vector<float> s(6);
    for (auto& v : s) v = static_cast<float>(rng.gaussian());
    samples.push_back(std::move(s));
  }
  const PcaModel model = train_pca(samples, 4);
  for (std::size_t i = 0; i < model.components.size(); ++i) {
    EXPECT_NEAR(util::l2_norm(model.components[i]), 1.0, 1e-5);
    for (std::size_t j = i + 1; j < model.components.size(); ++j) {
      EXPECT_NEAR(util::dot(model.components[i], model.components[j]), 0.0,
                  1e-5);
    }
  }
}

TEST(Pca, RecoversLowRankStructure) {
  // Data that lives on a 2-D plane inside R^5 must be reconstructed almost
  // exactly from 2 components.
  util::Rng rng(17);
  const std::vector<float> dir1{1, 0, 1, 0, 1};
  const std::vector<float> dir2{0, 1, 0, -1, 0};
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 80; ++i) {
    const auto a = static_cast<float>(rng.gaussian());
    const auto b = static_cast<float>(rng.gaussian());
    std::vector<float> s(5);
    for (int d = 0; d < 5; ++d) s[d] = a * dir1[d] + b * dir2[d];
    samples.push_back(std::move(s));
  }
  const PcaModel model = train_pca(samples, 2);
  for (const auto& s : samples) {
    const auto rec = model.reconstruct(model.project(s));
    EXPECT_LT(util::l2_distance(rec, s), 1e-4);
  }
  EXPECT_GT(model.eigenvalues[0], 0.5f);
}

TEST(Pca, ProjectionReducesDimension) {
  util::Rng rng(18);
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 20; ++i) {
    std::vector<float> s(10);
    for (auto& v : s) v = static_cast<float>(rng.gaussian());
    samples.push_back(std::move(s));
  }
  const PcaModel model = train_pca(samples, 3);
  EXPECT_EQ(model.output_dim(), 3u);
  EXPECT_EQ(model.project(samples[0]).size(), 3u);
}

// ---------- PCA-SIFT ----------

TEST(PcaSift, GradientPatchIsUnitNorm) {
  const img::Image im = textured_image(64, 19);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  const auto patch = gradient_patch(im, kps[0]);
  PcaSiftConfig cfg;
  EXPECT_EQ(patch.size(),
            static_cast<std::size_t>(2 * cfg.patch_size * cfg.patch_size));
  EXPECT_NEAR(util::l2_norm(patch), 1.0, 1e-4);
}

TEST(PcaSift, TrainAndProjectEndToEnd) {
  std::vector<img::Image> images;
  for (int i = 0; i < 4; ++i) images.push_back(textured_image(64, 20 + i));
  PcaSiftConfig cfg;
  cfg.output_dim = 12;
  const PcaModel model = train_pca_sift(images, cfg, 200);
  EXPECT_EQ(model.output_dim(), 12u);
  const auto kps = detect_keypoints(images[0]);
  ASSERT_FALSE(kps.empty());
  const auto desc = compute_pca_sift(images[0], kps[0], model, cfg);
  EXPECT_EQ(desc.size(), 12u);
}

TEST(PcaSift, SimilarPatchesProjectClose) {
  std::vector<img::Image> images;
  for (int i = 0; i < 4; ++i) images.push_back(textured_image(64, 30 + i));
  PcaSiftConfig cfg;
  cfg.output_dim = 16;
  const PcaModel model = train_pca_sift(images, cfg, 200);

  const img::Image& im = images[0];
  img::Image noisy = im;
  util::Rng rng(31);
  img::add_gaussian_noise(noisy, 0.01, rng);
  const auto kps = detect_keypoints(im);
  ASSERT_FALSE(kps.empty());
  const auto d1 = compute_pca_sift(im, kps[0], model, cfg);
  const auto d2 = compute_pca_sift(noisy, kps[0], model, cfg);
  // Same keypoint, slightly noisy image: projections nearly identical
  // relative to the typical descriptor scale.
  EXPECT_LT(util::l2_distance(d1, d2), 0.3 * util::l2_norm(d1) + 1e-3);
}

// ---------- Matcher ----------

TEST(Matcher, FindsIdenticalFeature) {
  const img::Image im = textured_image(64, 40);
  const auto feats = extract_sift_features(im, 20);
  ASSERT_GE(feats.size(), 3u);
  const auto matches = match_features(feats, feats);
  // Every feature matches itself (distance 0 beats the ratio test).
  EXPECT_EQ(matches.size(), feats.size());
  for (const auto& m : matches) {
    EXPECT_EQ(m.query_idx, m.train_idx);
    EXPECT_NEAR(m.distance, 0.0, 1e-6);
  }
}

TEST(Matcher, EmptyTrainGivesNoMatches) {
  const img::Image im = textured_image(64, 41);
  const auto feats = extract_sift_features(im, 8);
  EXPECT_TRUE(match_features(feats, {}).empty());
}

TEST(Matcher, SimilarityIsHighForNearDuplicate) {
  const img::Image im = textured_image(96, 42);
  util::Rng rng(43);
  img::PerturbParams pp;
  pp.max_rotation_rad = 0.02;
  pp.max_translate_px = 1.0;
  pp.max_noise_stddev = 0.005;
  const img::Image dup = img::make_near_duplicate(im, pp, rng);
  const auto f1 = extract_sift_features(im, 32);
  const auto f2 = extract_sift_features(dup, 32);
  const img::Image other = textured_image(96, 99);
  const auto f3 = extract_sift_features(other, 32);
  const double sim_dup = image_similarity(f1, f2);
  const double sim_other = image_similarity(f1, f3);
  EXPECT_GT(sim_dup, sim_other);
}

}  // namespace
}  // namespace fast::vision
