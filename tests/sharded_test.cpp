// Tests for the distributed index, deletion and persistence extensions.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "core/sharded_index.hpp"
#include "test_helpers.hpp"
#include "workload/query_gen.hpp"

namespace fast::core {
namespace {

class ShardedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(36));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }
  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }
  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* ShardedTest::dataset_ = nullptr;
vision::PcaModel* ShardedTest::pca_ = nullptr;

// ---------- ShardedFastIndex ----------

TEST_F(ShardedTest, InsertsRouteToOwningShard) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    index.insert(i, dataset_->photos[i].image);
  }
  EXPECT_EQ(index.size(), 20u);
  std::size_t sum = 0;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    sum += index.shard(s).size();
  }
  EXPECT_EQ(sum, 20u);
  // Each id lives exactly in its mapped shard.
  for (std::size_t i = 0; i < 20; ++i) {
    const std::size_t owner = index.shard_of(i);
    EXPECT_NE(index.shard(owner).signature_of(i), nullptr);
  }
}

TEST_F(ShardedTest, ScatterGatherMatchesSingleIndexTopHit) {
  ShardedFastIndex sharded(small_config(), *pca_, 4, 2);
  FastIndex single(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 24; ++i) {
    sigs.push_back(single.summarize(dataset_->photos[i].image));
    sharded.insert_signature(i, sigs.back());
    single.insert_signature(i, sigs.back());
  }
  for (std::size_t i = 0; i < 24; ++i) {
    const QueryResult a = sharded.query_signature(sigs[i], 1);
    const QueryResult b = single.query_signature(sigs[i], 1);
    ASSERT_FALSE(a.hits.empty());
    ASSERT_FALSE(b.hits.empty());
    EXPECT_DOUBLE_EQ(a.hits.front().score, b.hits.front().score);
  }
}

TEST_F(ShardedTest, QueryCostIncludesNetworkHops) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  const auto sig = index.shard(0).summarize(dataset_->photos[0].image);
  index.insert_signature(0, sig);
  const QueryResult r = index.query_signature(sig, 3);
  EXPECT_GT(r.cost.elapsed_s(), 2 * small_config().cost.net_rtt_s);
}

// The distributed insert is the local insert plus exactly one signature-
// routing network hop — same FE + Bloom-hash + placement accounting as the
// plain index underneath (the cost-parity contract shared with the
// concurrent facade).
TEST_F(ShardedTest, InsertCostIsPlainIndexPlusOneNetworkHop) {
  // One shard so the storage seed (and thus probe counts) match `plain`
  // exactly; the multi-shard batch path is covered by
  // InsertBatchMatchesPerItemInserts.
  ShardedFastIndex sharded(small_config(), *pca_, 1, 1);
  FastIndex plain(small_config(), *pca_);
  const double hop_s = small_config().cost.net_transfer_s(512);
  for (std::size_t i = 0; i < 8; ++i) {
    const InsertResult a = sharded.insert(i, dataset_->photos[i].image);
    const InsertResult b = plain.insert(i, dataset_->photos[i].image);
    EXPECT_NEAR(a.cost.elapsed_s(), b.cost.elapsed_s() + hop_s, 1e-12) << i;
    EXPECT_EQ(a.cost.hash_ops(), b.cost.hash_ops()) << i;
  }
}

TEST_F(ShardedTest, SingleShardDegeneratesToFastIndex) {
  ShardedFastIndex sharded(small_config(), *pca_, 1, 1);
  FastIndex single(small_config(), *pca_);
  const auto sig = single.summarize(dataset_->photos[5].image);
  sharded.insert_signature(5, sig);
  single.insert_signature(5, sig);
  const QueryResult a = sharded.query_signature(sig, 1);
  const QueryResult b = single.query_signature(sig, 1);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  EXPECT_EQ(a.hits.front().id, b.hits.front().id);
}

TEST_F(ShardedTest, IndexBytesSumOverShards) {
  ShardedFastIndex index(small_config(), *pca_, 3, 1);
  const std::size_t empty = index.index_bytes();
  index.insert(0, dataset_->photos[0].image);
  EXPECT_GT(index.index_bytes(), empty);
}

// ---------- erase ----------

TEST_F(ShardedTest, EraseRemovesFromResults) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 12; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  ASSERT_TRUE(index.erase(5));
  EXPECT_EQ(index.size(), 11u);
  EXPECT_EQ(index.signature_of(5), nullptr);
  const QueryResult r = index.query_signature(sigs[5], 12);
  for (const auto& hit : r.hits) {
    EXPECT_NE(hit.id, 5u);
  }
}

TEST_F(ShardedTest, EraseUnknownIdReturnsFalse) {
  FastIndex index(small_config(), *pca_);
  EXPECT_FALSE(index.erase(12345));
}

TEST_F(ShardedTest, EraseKeepsOtherImagesRetrievable) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 12; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  for (std::size_t i = 0; i < 6; ++i) index.erase(i);
  for (std::size_t i = 6; i < 12; ++i) {
    const QueryResult r = index.query_signature(sigs[i], 1);
    ASSERT_FALSE(r.hits.empty()) << i;
    EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
  }
}

TEST_F(ShardedTest, ReinsertAfterErase) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[0].image);
  index.insert_signature(7, sig);
  index.erase(7);
  index.insert_signature(7, sig);
  const QueryResult r = index.query_signature(sig, 1);
  ASSERT_FALSE(r.hits.empty());
  EXPECT_EQ(r.hits.front().id, 7u);
}

// ---------- persistence ----------

TEST_F(ShardedTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_index_test.bin")
          .string();
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 15; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  index.save(path);

  FastIndex restored = FastIndex::load(path, small_config(), *pca_);
  EXPECT_EQ(restored.size(), index.size());
  for (std::size_t i = 0; i < 15; ++i) {
    const auto* sig = restored.signature_of(i);
    ASSERT_NE(sig, nullptr);
    EXPECT_EQ(sig->set_bits(), sigs[i].set_bits());
    const QueryResult r = restored.query_signature(sigs[i], 1);
    ASSERT_FALSE(r.hits.empty());
    EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
  }
  std::remove(path.c_str());
}

TEST_F(ShardedTest, LoadRejectsGeometryMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_index_geom.bin")
          .string();
  FastIndex index(small_config(), *pca_);
  index.insert_signature(0, index.summarize(dataset_->photos[0].image));
  index.save(path);
  FastConfig other = small_config();
  other.bloom_bits = 4096;
  other.lsh.dim = 4096;
  EXPECT_THROW(FastIndex::load(path, other, *pca_), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(ShardedTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_index_garbage.bin")
          .string();
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not an index", f);
  std::fclose(f);
  EXPECT_THROW(FastIndex::load(path, small_config(), *pca_),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------- batch path ----------

TEST_F(ShardedTest, InsertBatchMatchesPerItemInserts) {
  ShardedFastIndex batched(small_config(), *pca_, 4, 2);
  ShardedFastIndex sequential(small_config(), *pca_, 4, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  const auto batch_results = batched.insert_batch(items);
  std::vector<InsertResult> seq_results;
  for (const auto& item : items) {
    seq_results.push_back(sequential.insert(item.id, *item.image));
  }
  ASSERT_EQ(batch_results.size(), seq_results.size());
  EXPECT_EQ(batched.size(), sequential.size());
  for (std::size_t s = 0; s < batched.shard_count(); ++s) {
    EXPECT_EQ(batched.shard(s).size(), sequential.shard(s).size());
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch_results[i].ok, seq_results[i].ok);
    EXPECT_DOUBLE_EQ(batch_results[i].cost.elapsed_s(),
                     seq_results[i].cost.elapsed_s());
  }
}

TEST_F(ShardedTest, QueryBatchMatchesPerItemQueries) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  index.insert_batch(items);

  std::vector<const img::Image*> queries;
  for (std::size_t i = 0; i < 8; ++i) {
    queries.push_back(&dataset_->photos[i].image);
  }
  const auto batch = index.query_batch(queries, 5);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult single = index.query(*queries[i], 5);
    ASSERT_EQ(batch[i].hits.size(), single.hits.size());
    EXPECT_DOUBLE_EQ(batch[i].cost.elapsed_s(), single.cost.elapsed_s());
    for (std::size_t h = 0; h < single.hits.size(); ++h) {
      EXPECT_EQ(batch[i].hits[h].id, single.hits[h].id);
      EXPECT_DOUBLE_EQ(batch[i].hits[h].score, single.hits[h].score);
    }
  }
}

}  // namespace
}  // namespace fast::core
