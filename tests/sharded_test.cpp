// Tests for the distributed index, deletion and persistence extensions.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "core/sharded_index.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace fast::core {
namespace {

class ShardedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(36));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }
  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }
  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* ShardedTest::dataset_ = nullptr;
vision::PcaModel* ShardedTest::pca_ = nullptr;

// ---------- ShardedFastIndex ----------

TEST_F(ShardedTest, InsertsRouteToOwningShard) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    index.insert(i, dataset_->photos[i].image);
  }
  EXPECT_EQ(index.size(), 20u);
  std::size_t sum = 0;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    sum += index.shard(s).size();
  }
  EXPECT_EQ(sum, 20u);
  // Each id lives exactly in its mapped shard.
  for (std::size_t i = 0; i < 20; ++i) {
    const std::size_t owner = index.shard_of(i);
    EXPECT_NE(index.shard(owner).signature_of(i), nullptr);
  }
}

TEST_F(ShardedTest, ScatterGatherMatchesSingleIndexTopHit) {
  ShardedFastIndex sharded(small_config(), *pca_, 4, 2);
  FastIndex single(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 24; ++i) {
    sigs.push_back(single.summarize(dataset_->photos[i].image));
    sharded.insert_signature(i, sigs.back());
    single.insert_signature(i, sigs.back());
  }
  for (std::size_t i = 0; i < 24; ++i) {
    const QueryResult a = sharded.query_signature(sigs[i], 1);
    const QueryResult b = single.query_signature(sigs[i], 1);
    ASSERT_FALSE(a.hits.empty());
    ASSERT_FALSE(b.hits.empty());
    EXPECT_DOUBLE_EQ(a.hits.front().score, b.hits.front().score);
  }
}

TEST_F(ShardedTest, QueryCostIncludesNetworkHops) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  const auto sig = index.shard(0).summarize(dataset_->photos[0].image);
  index.insert_signature(0, sig);
  const QueryResult r = index.query_signature(sig, 3);
  EXPECT_GT(r.cost.elapsed_s(), 2 * small_config().cost.net_rtt_s);
}

// The distributed insert is the local insert plus exactly one signature-
// routing network hop — same FE + Bloom-hash + placement accounting as the
// plain index underneath (the cost-parity contract shared with the
// concurrent facade).
TEST_F(ShardedTest, InsertCostIsPlainIndexPlusOneNetworkHop) {
  // One shard so the storage seed (and thus probe counts) match `plain`
  // exactly; the multi-shard batch path is covered by
  // InsertBatchMatchesPerItemInserts.
  ShardedFastIndex sharded(small_config(), *pca_, 1, 1);
  FastIndex plain(small_config(), *pca_);
  const double hop_s = small_config().cost.net_transfer_s(512);
  for (std::size_t i = 0; i < 8; ++i) {
    const InsertResult a = sharded.insert(i, dataset_->photos[i].image);
    const InsertResult b = plain.insert(i, dataset_->photos[i].image);
    EXPECT_NEAR(a.cost.elapsed_s(), b.cost.elapsed_s() + hop_s, 1e-12) << i;
    EXPECT_EQ(a.cost.hash_ops(), b.cost.hash_ops()) << i;
  }
}

TEST_F(ShardedTest, SingleShardDegeneratesToFastIndex) {
  ShardedFastIndex sharded(small_config(), *pca_, 1, 1);
  FastIndex single(small_config(), *pca_);
  const auto sig = single.summarize(dataset_->photos[5].image);
  sharded.insert_signature(5, sig);
  single.insert_signature(5, sig);
  const QueryResult a = sharded.query_signature(sig, 1);
  const QueryResult b = single.query_signature(sig, 1);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  EXPECT_EQ(a.hits.front().id, b.hits.front().id);
}

TEST_F(ShardedTest, IndexBytesSumOverShards) {
  ShardedFastIndex index(small_config(), *pca_, 3, 1);
  const std::size_t empty = index.index_bytes();
  index.insert(0, dataset_->photos[0].image);
  EXPECT_GT(index.index_bytes(), empty);
}

// ---------- erase ----------

TEST_F(ShardedTest, EraseRemovesFromResults) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 12; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  ASSERT_TRUE(index.erase(5));
  EXPECT_EQ(index.size(), 11u);
  EXPECT_EQ(index.signature_of(5), nullptr);
  const QueryResult r = index.query_signature(sigs[5], 12);
  for (const auto& hit : r.hits) {
    EXPECT_NE(hit.id, 5u);
  }
}

TEST_F(ShardedTest, EraseUnknownIdReturnsFalse) {
  FastIndex index(small_config(), *pca_);
  EXPECT_FALSE(index.erase(12345));
}

TEST_F(ShardedTest, EraseKeepsOtherImagesRetrievable) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 12; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  for (std::size_t i = 0; i < 6; ++i) index.erase(i);
  for (std::size_t i = 6; i < 12; ++i) {
    const QueryResult r = index.query_signature(sigs[i], 1);
    ASSERT_FALSE(r.hits.empty()) << i;
    EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
  }
}

TEST_F(ShardedTest, ReinsertAfterErase) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[0].image);
  index.insert_signature(7, sig);
  index.erase(7);
  index.insert_signature(7, sig);
  const QueryResult r = index.query_signature(sig, 1);
  ASSERT_FALSE(r.hits.empty());
  EXPECT_EQ(r.hits.front().id, 7u);
}

// ---------- persistence ----------

TEST_F(ShardedTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_index_test.bin")
          .string();
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 15; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  index.save(path);

  FastIndex restored = FastIndex::load(path, small_config(), *pca_);
  EXPECT_EQ(restored.size(), index.size());
  for (std::size_t i = 0; i < 15; ++i) {
    const auto* sig = restored.signature_of(i);
    ASSERT_NE(sig, nullptr);
    EXPECT_EQ(sig->set_bits(), sigs[i].set_bits());
    const QueryResult r = restored.query_signature(sigs[i], 1);
    ASSERT_FALSE(r.hits.empty());
    EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
  }
  std::remove(path.c_str());
}

TEST_F(ShardedTest, LoadRejectsGeometryMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_index_geom.bin")
          .string();
  FastIndex index(small_config(), *pca_);
  index.insert_signature(0, index.summarize(dataset_->photos[0].image));
  index.save(path);
  FastConfig other = small_config();
  other.bloom_bits = 4096;
  other.lsh.dim = 4096;
  EXPECT_THROW(FastIndex::load(path, other, *pca_), std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(ShardedTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_index_garbage.bin")
          .string();
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not an index", f);
  std::fclose(f);
  EXPECT_THROW(FastIndex::load(path, small_config(), *pca_),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------- batch path ----------

TEST_F(ShardedTest, InsertBatchMatchesPerItemInserts) {
  ShardedFastIndex batched(small_config(), *pca_, 4, 2);
  ShardedFastIndex sequential(small_config(), *pca_, 4, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  const auto batch_results = batched.insert_batch(items);
  std::vector<InsertResult> seq_results;
  for (const auto& item : items) {
    seq_results.push_back(sequential.insert(item.id, *item.image));
  }
  ASSERT_EQ(batch_results.size(), seq_results.size());
  EXPECT_EQ(batched.size(), sequential.size());
  for (std::size_t s = 0; s < batched.shard_count(); ++s) {
    EXPECT_EQ(batched.shard(s).size(), sequential.shard(s).size());
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch_results[i].ok, seq_results[i].ok);
    EXPECT_DOUBLE_EQ(batch_results[i].cost.elapsed_s(),
                     seq_results[i].cost.elapsed_s());
  }
}

TEST_F(ShardedTest, QueryBatchMatchesPerItemQueries) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  index.insert_batch(items);

  std::vector<const img::Image*> queries;
  for (std::size_t i = 0; i < 8; ++i) {
    queries.push_back(&dataset_->photos[i].image);
  }
  const auto batch = index.query_batch(queries, 5);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult single = index.query(*queries[i], 5);
    ASSERT_EQ(batch[i].hits.size(), single.hits.size());
    EXPECT_DOUBLE_EQ(batch[i].cost.elapsed_s(), single.cost.elapsed_s());
    for (std::size_t h = 0; h < single.hits.size(); ++h) {
      EXPECT_EQ(batch[i].hits[h].id, single.hits[h].id);
      EXPECT_DOUBLE_EQ(batch[i].hits[h].score, single.hits[h].score);
    }
  }
}

// ---------- Bloofi-style shard routing ----------

hash::SparseSignature random_signature(std::uint64_t seed,
                                       std::size_t bloom_bits) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x51ed);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < 96; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(bloom_bits / 97));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(bits, bloom_bits);
}

FastConfig routed_config() {
  FastConfig cfg;
  cfg.cuckoo.capacity = 256;
  cfg.shard_routing_bits = 12;
  return cfg;
}

// Routing summaries have no false negatives, so a routed deployment must
// return bit-identical results to its routing-off twin — while actually
// skipping shards (counted in shard.routing_skips) for queries whose keys
// are resident on few of them.
TEST_F(ShardedTest, RoutingSkipsShardsWithIdenticalResults) {
  ShardedFastIndex routed(routed_config(), *pca_, 16, 2);
  ShardedFastIndex full(small_config(), *pca_, 16, 2);
  ASSERT_TRUE(routed.routing_enabled());
  ASSERT_FALSE(full.routing_enabled());

  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 24; ++i) {
    sigs.push_back(full.shard(0).summarize(dataset_->photos[i].image));
    routed.insert_signature(i, sigs.back());
    full.insert_signature(i, sigs.back());
  }

  // Resident queries: identical ranked results, hit by hit.
  for (std::size_t i = 0; i < 24; ++i) {
    const QueryResult a = routed.query_signature(sigs[i], 5);
    const QueryResult b = full.query_signature(sigs[i], 5);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << i;
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id) << i;
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score) << i;
    }
  }
  // Foreign queries share no bucket keys with the 24 residents, so routing
  // must skip (nearly) every shard on them.
  for (std::uint64_t q = 0; q < 8; ++q) {
    const auto sig = random_signature(q, routed_config().bloom_bits);
    const QueryResult a = routed.query_signature(sig, 5);
    const QueryResult b = full.query_signature(sig, 5);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << q;
  }
  const auto m = routed.metrics().snapshot();
  EXPECT_GT(m.counters.at("shard.routing_skips"), 0u);
  const auto& probed = m.histograms.at("sharded.shards_probed");
  EXPECT_EQ(probed.count, 32u);  // every query observed
  EXPECT_LT(probed.sum, 32.0 * 16.0);  // ...and not all of them scattered wide
  // The routing-off twin never skips and always probes all 16.
  const auto mf = full.metrics().snapshot();
  EXPECT_EQ(mf.counters.at("shard.routing_skips"), 0u);
  EXPECT_EQ(mf.histograms.at("sharded.shards_probed").sum, 32.0 * 16.0);
}

// Erase must decrement the counting summaries: once every resident of a
// signature is gone, queries for it stop probing any shard, and re-inserts
// bring the routes back.
TEST_F(ShardedTest, RoutingEraseAndReinsertMaintainSummaries) {
  ShardedFastIndex routed(routed_config(), *pca_, 8, 2);
  ShardedFastIndex full(small_config(), *pca_, 8, 2);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 16; ++i) {
    sigs.push_back(full.shard(0).summarize(dataset_->photos[i].image));
    routed.insert_signature(i, sigs.back());
    full.insert_signature(i, sigs.back());
  }
  for (std::size_t i = 0; i < 16; i += 2) {
    EXPECT_TRUE(routed.erase(i));
    EXPECT_TRUE(full.erase(i));
  }
  EXPECT_FALSE(routed.erase(99));
  for (std::size_t i = 0; i < 16; ++i) {
    const QueryResult a = routed.query_signature(sigs[i], 5);
    const QueryResult b = full.query_signature(sigs[i], 5);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << i;
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id) << i;
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score) << i;
    }
  }
  // Re-insert with a DIFFERENT signature: the summary must drop the old
  // keys (no stale routes) and carry the new ones.
  routed.insert_signature(2, sigs[15]);
  full.insert_signature(2, sigs[15]);
  const QueryResult a = routed.query_signature(sigs[15], 8);
  const QueryResult b = full.query_signature(sigs[15], 8);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t h = 0; h < a.hits.size(); ++h) {
    EXPECT_EQ(a.hits[h].id, b.hits[h].id);
  }
}

// Summaries are derived state rebuilt on recovery — a recovered routed
// deployment answers exactly like its pre-crash self and still skips.
TEST_F(ShardedTest, RoutingSummariesRebuiltOnRecovery) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fast_sharded_routing")
          .string();
  std::filesystem::remove_all(dir);
  DurabilityOptions opts;
  opts.dir = dir;

  ShardedFastIndex reference(routed_config(), *pca_, 8, 2);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 16; ++i) {
    sigs.push_back(reference.shard(0).summarize(dataset_->photos[i].image));
  }
  {
    auto opened =
        ShardedFastIndex::open_or_recover(routed_config(), *pca_, 8, opts);
    ASSERT_TRUE(opened.ok());
    for (std::size_t i = 0; i < 16; ++i) {
      opened.value()->insert_signature(i, sigs[i]);
      reference.insert_signature(i, sigs[i]);
    }
    opened.value()->erase(3);
    reference.erase(3);
  }
  auto recovered =
      ShardedFastIndex::open_or_recover(routed_config(), *pca_, 8, opts);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered.value()->routing_enabled());
  EXPECT_EQ(recovered.value()->size(), reference.size());
  for (std::size_t i = 0; i < 16; ++i) {
    const QueryResult a = recovered.value()->query_signature(sigs[i], 5);
    const QueryResult b = reference.query_signature(sigs[i], 5);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << i;
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id) << i;
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score) << i;
    }
  }
  std::filesystem::remove_all(dir);
}

// Routing over tiered shards: live-signature enumeration spans memtables
// and sealed segments, and erase consults the tiered lookup path.
TEST_F(ShardedTest, RoutingWorksOnTieredShards) {
  FastConfig cfg = routed_config();
  cfg.tier.enabled = true;
  cfg.tier.seal_threshold = 4;
  cfg.tier.background = false;
  FastConfig cfg_off = cfg;
  cfg_off.shard_routing_bits = 0;
  ShardedFastIndex routed(cfg, *pca_, 4, 2);
  ShardedFastIndex full(cfg_off, *pca_, 4, 2);
  ASSERT_TRUE(routed.is_tiered());

  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 20; ++i) {
    sigs.push_back(routed.tiered_shard(0).summarize(dataset_->photos[i].image));
    routed.insert_signature(i, sigs.back());
    full.insert_signature(i, sigs.back());
  }
  routed.erase(7);
  full.erase(7);
  for (std::size_t i = 0; i < 20; ++i) {
    const QueryResult a = routed.query_signature(sigs[i], 5);
    const QueryResult b = full.query_signature(sigs[i], 5);
    ASSERT_EQ(a.hits.size(), b.hits.size()) << i;
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id) << i;
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score) << i;
    }
  }
}

// query_batch applies per-query routing: batch results must match the
// per-item routed queries exactly, cost included.
TEST_F(ShardedTest, RoutedQueryBatchMatchesPerItemQueries) {
  ShardedFastIndex index(routed_config(), *pca_, 8, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  index.insert_batch(items);

  std::vector<const img::Image*> queries;
  for (std::size_t i = 0; i < 8; ++i) {
    queries.push_back(&dataset_->photos[i].image);
  }
  const auto batch = index.query_batch(queries, 5);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult single = index.query(*queries[i], 5);
    ASSERT_EQ(batch[i].hits.size(), single.hits.size());
    EXPECT_DOUBLE_EQ(batch[i].cost.elapsed_s(), single.cost.elapsed_s());
    for (std::size_t h = 0; h < single.hits.size(); ++h) {
      EXPECT_EQ(batch[i].hits[h].id, single.hits[h].id);
      EXPECT_DOUBLE_EQ(batch[i].hits[h].score, single.hits[h].score);
    }
  }
}

}  // namespace
}  // namespace fast::core
