#include <set>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "mobile/chunker.hpp"
#include "mobile/transmitter.hpp"
#include "mobile/user_groups.hpp"
#include "test_helpers.hpp"
#include "vision/pca_sift.hpp"

namespace fast::mobile {
namespace {

// ---------- Chunker ----------

TEST(Chunker, CoversWholeInput) {
  Chunker chunker;
  const auto data = synth_file_bytes(1, 100000);
  const auto chunks = chunker.chunk(data);
  ASSERT_FALSE(chunks.empty());
  std::size_t total = 0;
  std::size_t expected_offset = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, expected_offset);
    expected_offset += c.length;
    total += c.length;
  }
  EXPECT_EQ(total, data.size());
}

TEST(Chunker, RespectsSizeBounds) {
  ChunkerConfig cfg;
  Chunker chunker(cfg);
  const auto data = synth_file_bytes(2, 500000);
  const auto chunks = chunker.chunk(data);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // last may be short
    EXPECT_GE(chunks[i].length, cfg.min_chunk);
    EXPECT_LE(chunks[i].length, cfg.max_chunk);
  }
}

TEST(Chunker, MeanChunkNearTarget) {
  ChunkerConfig cfg;
  Chunker chunker(cfg);
  const auto data = synth_file_bytes(3, 2000000);
  const auto chunks = chunker.chunk(data);
  const double mean =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  // Expected chunk size for masked CDC with min/max clamps is around
  // min + avg; allow a generous band.
  EXPECT_GT(mean, cfg.avg_chunk * 0.5);
  EXPECT_LT(mean, cfg.avg_chunk * 3.0);
}

TEST(Chunker, IdenticalInputsIdenticalChunks) {
  Chunker chunker;
  const auto a = synth_file_bytes(5, 50000);
  const auto b = synth_file_bytes(5, 50000);
  const auto ca = chunker.chunk(a);
  const auto cb = chunker.chunk(b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].fingerprint, cb[i].fingerprint);
  }
}

TEST(Chunker, ContentShiftPreservesMostChunks) {
  // CDC's defining property: prepending bytes only perturbs the first
  // chunk boundary, the rest re-synchronize.
  Chunker chunker;
  const auto base = synth_file_bytes(7, 200000);
  // Reserve before inserting: the relocating insert trips a GCC 12
  // -Warray-bounds false positive under -fsanitize=thread.
  std::vector<std::uint8_t> shifted;
  shifted.reserve(100 + base.size());
  shifted.assign(100, 0xAB);
  shifted.insert(shifted.end(), base.begin(), base.end());
  const auto ca = chunker.chunk(base);
  const auto cb = chunker.chunk(shifted);
  std::set<std::uint64_t> fps;
  for (const auto& c : ca) fps.insert(c.fingerprint);
  std::size_t shared = 0;
  for (const auto& c : cb) shared += fps.count(c.fingerprint);
  EXPECT_GT(static_cast<double>(shared) / ca.size(), 0.6);
}

TEST(Chunker, EmptyInputNoChunks) {
  Chunker chunker;
  EXPECT_TRUE(chunker.chunk({}).empty());
}

TEST(SynthFile, DeterministicAndSeedSensitive) {
  EXPECT_EQ(synth_file_bytes(9, 1000), synth_file_bytes(9, 1000));
  EXPECT_NE(synth_file_bytes(9, 1000), synth_file_bytes(10, 1000));
}

// ---------- Transmitters ----------

class TransmitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::DatasetSpec spec = workload::DatasetSpec::wuhan(30);
    spec.image_size = 96;  // enough texture for reliable signatures
    spec.mean_file_mb = 2.0;  // multi-MB photos: the Fig. 8 regime
    dataset_ = new workload::Dataset(workload::SceneGenerator(spec).generate());
    // A real (trained) eigenspace: near-duplicate suppression needs
    // data-adapted descriptors, which the random fake basis cannot give.
    std::vector<img::Image> sample;
    for (std::size_t i = 0; i < 10; ++i) {
      sample.push_back(dataset_->photos[i].image);
    }
    pca_cfg_ = new vision::PcaSiftConfig();
    pca_cfg_->patch_size = 13;
    pca_ = new vision::PcaModel(
        vision::train_pca_sift(sample, *pca_cfg_, 500));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    delete pca_cfg_;
    dataset_ = nullptr;
    pca_ = nullptr;
    pca_cfg_ = nullptr;
  }

  static core::FastConfig fast_config() {
    core::FastConfig cfg;
    cfg.pca_sift = *pca_cfg_;
    cfg.cuckoo.capacity = 512;
    return cfg;
  }

  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
  static vision::PcaSiftConfig* pca_cfg_;
};

workload::Dataset* TransmitTest::dataset_ = nullptr;
vision::PcaModel* TransmitTest::pca_ = nullptr;
vision::PcaSiftConfig* TransmitTest::pca_cfg_ = nullptr;

TEST_F(TransmitTest, UserGroupsPartitionLandmarks) {
  const auto groups = make_user_groups(*dataset_, 3);
  ASSERT_EQ(groups.size(), 3u);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (const auto& g : groups) {
    EXPECT_FALSE(g.landmarks.empty());
    total += g.landmarks.size();
    for (auto l : g.landmarks) {
      EXPECT_TRUE(seen.insert(l).second) << "landmark in two groups";
    }
  }
  EXPECT_EQ(total, dataset_->spec.landmarks);
}

TEST_F(TransmitTest, UploadBatchShape) {
  const auto groups = make_user_groups(*dataset_, 3);
  const auto batch = make_upload_batch(*dataset_, groups[0], 20, 1);
  EXPECT_EQ(batch.size(), 20u);
  for (const auto& item : batch) {
    EXPECT_NE(item.image, nullptr);
    EXPECT_GT(item.file_bytes, 0u);
  }
}

TEST_F(TransmitTest, ChunkTransmitterDedupsExactReshares) {
  const auto groups = make_user_groups(*dataset_, 3);
  UserGroupSpec heavy = groups[0];
  heavy.exact_dup_prob = 0.9;  // nearly everything is a re-share
  const auto batch = make_upload_batch(*dataset_, heavy, 15, 2);
  ChunkTransmitter tx(ChunkerConfig{}, sim::EnergyModel{});
  const TransmissionReport report = tx.upload_batch(batch);
  EXPECT_EQ(report.images, 15u);
  EXPECT_GT(report.suppressed, 0u);
  EXPECT_LT(report.sent_bytes, report.raw_bytes);
  EXPECT_GT(report.bandwidth_savings(), 0.3);
}

TEST_F(TransmitTest, ChunkTransmitterCannotDedupNearDuplicates) {
  const auto groups = make_user_groups(*dataset_, 3);
  UserGroupSpec no_reshare = groups[0];
  no_reshare.exact_dup_prob = 0.0;  // only near-duplicates remain
  const auto batch = make_upload_batch(*dataset_, no_reshare, 10, 3);
  ChunkTransmitter tx(ChunkerConfig{}, sim::EnergyModel{});
  const TransmissionReport report = tx.upload_batch(batch);
  // Different shots share no bytes, so most data is still transmitted
  // (random re-draws of the same photo are the only dedup opportunity).
  EXPECT_GT(static_cast<double>(report.sent_bytes), 0.55 * report.raw_bytes);
}

TEST_F(TransmitTest, FastTransmitterSuppressesNearDuplicates) {
  core::FastIndex index(fast_config(), *pca_);
  FastTransmitter tx(index, sim::EnergyModel{}, 0.14);
  const auto groups = make_user_groups(*dataset_, 3);
  UserGroupSpec g = groups[0];
  g.exact_dup_prob = 0.3;
  const auto batch = make_upload_batch(*dataset_, g, 25, 4);
  const TransmissionReport report = tx.upload_batch(batch);
  EXPECT_EQ(report.images, 25u);
  EXPECT_GT(report.suppressed, 0u);
  EXPECT_GT(report.bandwidth_savings(), 0.2);
}

TEST_F(TransmitTest, FastBeatsChunkOnNearDupHeavyStreams) {
  // The Fig. 8 headline at test scale: with near-duplicate-rich uploads,
  // FAST transmits fewer bytes and burns less energy than chunking.
  const auto groups = make_user_groups(*dataset_, 3);
  UserGroupSpec g = groups[1];
  g.exact_dup_prob = 0.2;
  const auto batch = make_upload_batch(*dataset_, g, 25, 5);

  ChunkTransmitter chunk_tx(ChunkerConfig{}, sim::EnergyModel{});
  const TransmissionReport chunk_report = chunk_tx.upload_batch(batch);

  core::FastIndex index(fast_config(), *pca_);
  FastTransmitter fast_tx(index, sim::EnergyModel{}, 0.14);
  const TransmissionReport fast_report = fast_tx.upload_batch(batch);

  EXPECT_LT(fast_report.sent_bytes, chunk_report.sent_bytes);
  EXPECT_LT(fast_report.energy_joule, chunk_report.energy_joule);
}

TEST_F(TransmitTest, EnergyIncludesCpu) {
  core::FastIndex index(fast_config(), *pca_);
  sim::EnergyModel energy;
  FastTransmitter tx(index, energy, 0.14);
  const auto groups = make_user_groups(*dataset_, 3);
  const auto batch = make_upload_batch(*dataset_, groups[0], 5, 6);
  const TransmissionReport report = tx.upload_batch(batch);
  EXPECT_GT(report.cpu_seconds, 0.0);
  EXPECT_GT(report.energy_joule, energy.compute_joule(report.cpu_seconds));
}

}  // namespace
}  // namespace fast::mobile
