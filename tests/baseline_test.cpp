#include <gtest/gtest.h>

#include "baseline/pca_sift_baseline.hpp"
#include "baseline/rnpe.hpp"
#include "baseline/sift_baseline.hpp"
#include "test_helpers.hpp"
#include "workload/query_gen.hpp"

namespace fast::baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(24));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }
  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* BaselineTest::dataset_ = nullptr;
vision::PcaModel* BaselineTest::pca_ = nullptr;

// ---------- SIFT baseline ----------

TEST_F(BaselineTest, SiftIndexGrowsAndChargesCosts) {
  SiftBaselineConfig cfg;
  cfg.max_keypoints = 32;
  SiftBaseline sift(cfg, sim::CostModel{});
  const InsertOutcome r0 = sift.insert(0, dataset_->photos[0].image);
  EXPECT_GE(r0.cost.elapsed_s(), cfg.extract.sift_s);
  EXPECT_EQ(sift.size(), 1u);
  EXPECT_GT(sift.index_bytes(), 0u);
  const std::size_t b1 = sift.index_bytes();
  sift.insert(1, dataset_->photos[1].image);
  EXPECT_GT(sift.index_bytes(), b1);
}

TEST_F(BaselineTest, SiftRetrievesExactDuplicate) {
  SiftBaselineConfig cfg;
  cfg.max_keypoints = 32;
  SiftBaseline sift(cfg, sim::CostModel{});
  for (std::size_t i = 0; i < 10; ++i) {
    sift.insert(i, dataset_->photos[i].image);
  }
  const QueryOutcome out = sift.query(dataset_->photos[4].image, 3);
  ASSERT_FALSE(out.hits.empty());
  EXPECT_EQ(out.hits.front().id, 4u);
  EXPECT_GT(out.hits.front().score, 0.9);  // self-match
}

TEST_F(BaselineTest, SiftQueryScansWholeStore) {
  SiftBaselineConfig cfg;
  cfg.max_keypoints = 16;
  cfg.cache_pages = 1;  // disk-bound: cache useless
  SiftBaseline sift(cfg, sim::CostModel{});
  for (std::size_t i = 0; i < 10; ++i) {
    sift.insert(i, dataset_->photos[i].image);
  }
  const QueryOutcome out = sift.query(dataset_->photos[0].image, 3);
  // Brute force: one hit entry per stored image, disk reads charged.
  EXPECT_EQ(out.hits.size(), 3u);
  EXPECT_GT(out.cost.disk_reads(), 0u);
}

// ---------- PCA-SIFT baseline ----------

TEST_F(BaselineTest, PcaSiftSmallerIndexThanSift) {
  SiftBaselineConfig scfg;
  scfg.max_keypoints = 32;
  SiftBaseline sift(scfg, sim::CostModel{});
  PcaSiftBaselineConfig pcfg;
  pcfg.max_keypoints = 32;
  PcaSiftBaseline pca_sift(pcfg, sim::CostModel{}, *pca_);
  for (std::size_t i = 0; i < 8; ++i) {
    sift.insert(i, dataset_->photos[i].image);
    pca_sift.insert(i, dataset_->photos[i].image);
  }
  EXPECT_LT(pca_sift.index_bytes(), sift.index_bytes());
}

TEST_F(BaselineTest, PcaSiftRetrievesExactDuplicate) {
  PcaSiftBaselineConfig cfg;
  cfg.max_keypoints = 32;
  PcaSiftBaseline baseline(cfg, sim::CostModel{}, *pca_);
  for (std::size_t i = 0; i < 10; ++i) {
    baseline.insert(i, dataset_->photos[i].image);
  }
  const QueryOutcome out = baseline.query(dataset_->photos[6].image, 3);
  ASSERT_FALSE(out.hits.empty());
  EXPECT_EQ(out.hits.front().id, 6u);
}

TEST_F(BaselineTest, PcaSiftFasterExtractionThanSift) {
  PcaSiftBaselineConfig pcfg;
  SiftBaselineConfig scfg;
  EXPECT_LT(pcfg.extract.pca_sift_s, scfg.extract.sift_s);
}

// ---------- RNPE ----------

TEST_F(BaselineTest, RnpeIndexesByLocation) {
  RnpeConfig cfg;
  cfg.tag_error_prob = 0.0;  // exact tags for this test
  Rnpe rnpe(cfg, sim::CostModel{});
  for (std::size_t i = 0; i < dataset_->photos.size(); ++i) {
    const auto& p = dataset_->photos[i];
    rnpe.insert(p.id, p.geo_x, p.geo_y, p.landmark, p.view);
  }
  EXPECT_EQ(rnpe.size(), dataset_->photos.size());

  const auto& probe = dataset_->photos[3];
  const QueryOutcome out =
      rnpe.query(probe.geo_x, probe.geo_y, probe.landmark, probe.view, 5);
  ASSERT_FALSE(out.hits.empty());
  // With exact tags, the top hit must share the landmark tag.
  const auto& top = out.hits.front();
  EXPECT_EQ(dataset_->photos[top.id].landmark, probe.landmark);
}

TEST_F(BaselineTest, RnpeTagErrorsReduceAgreement) {
  // With high tag noise, top hits often carry the wrong view tag —
  // the accuracy ceiling of Table III.
  RnpeConfig noisy;
  noisy.tag_error_prob = 0.5;
  noisy.seed = 123;
  Rnpe rnpe(noisy, sim::CostModel{});
  for (std::size_t i = 0; i < dataset_->photos.size(); ++i) {
    const auto& p = dataset_->photos[i];
    rnpe.insert(p.id, p.geo_x, p.geo_y, p.landmark, p.view);
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& probe = dataset_->photos[i];
    const QueryOutcome out =
        rnpe.query(probe.geo_x, probe.geo_y, probe.landmark, probe.view, 3);
    for (const auto& hit : out.hits) {
      if (dataset_->photos[hit.id].view != probe.view) ++mismatches;
    }
  }
  EXPECT_GT(mismatches, 0u);
}

TEST_F(BaselineTest, RnpeQueryCostIncludesTreeAccesses) {
  RnpeConfig cfg;
  Rnpe rnpe(cfg, sim::CostModel{});
  for (std::size_t i = 0; i < dataset_->photos.size(); ++i) {
    const auto& p = dataset_->photos[i];
    rnpe.insert(p.id, p.geo_x, p.geo_y, p.landmark, p.view);
  }
  const QueryOutcome out = rnpe.query(50, 50, 0, 0, 5);
  EXPECT_GT(out.cost.elapsed_s(), cfg.extract.rnpe_s);
}

TEST_F(BaselineTest, RnpeIndexSmallerThanSift) {
  SiftBaselineConfig scfg;
  scfg.max_keypoints = 32;
  SiftBaseline sift(scfg, sim::CostModel{});
  RnpeConfig rcfg;
  rcfg.space.rnpe_bytes_per_image = 4096;  // small-image test scale
  Rnpe rnpe(rcfg, sim::CostModel{});
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& p = dataset_->photos[i];
    sift.insert(i, p.image);
    rnpe.insert(p.id, p.geo_x, p.geo_y, p.landmark, p.view);
  }
  EXPECT_LT(rnpe.index_bytes(), sift.index_bytes());
}

}  // namespace
}  // namespace fast::baseline
