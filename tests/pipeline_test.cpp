// Batch-first execution path and stage composition: insert_batch /
// query_batch must be indistinguishable from sequential per-item calls
// (identical final index state, hits, scores, and cost accounting), and
// the stage-injection constructor must compose caller-provided backends.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "core/pipeline/factory.hpp"
#include "hash/group_stores.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace fast::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(32));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }
  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }
  static std::vector<BatchImage> batch_of(std::size_t n) {
    std::vector<BatchImage> items;
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(BatchImage{i, &dataset_->photos[i].image});
    }
    return items;
  }
  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* PipelineTest::dataset_ = nullptr;
vision::PcaModel* PipelineTest::pca_ = nullptr;

TEST_F(PipelineTest, InsertBatchMatchesSequentialInserts) {
  FastIndex sequential(small_config(), *pca_);
  FastIndex batched(small_config(), *pca_);
  const auto items = batch_of(20);

  std::vector<InsertResult> seq_results;
  for (const auto& item : items) {
    seq_results.push_back(sequential.insert(item.id, *item.image));
  }
  util::ThreadPool pool(4);
  const std::vector<InsertResult> batch_results =
      batched.insert_batch(items, &pool);

  ASSERT_EQ(batch_results.size(), seq_results.size());
  EXPECT_EQ(batched.size(), sequential.size());
  EXPECT_EQ(batched.group_count(), sequential.group_count());
  EXPECT_EQ(batched.rehash_count(), sequential.rehash_count());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch_results[i].ok, seq_results[i].ok);
    EXPECT_EQ(batch_results[i].rehashes, seq_results[i].rehashes);
    EXPECT_DOUBLE_EQ(batch_results[i].cost.elapsed_s(),
                     seq_results[i].cost.elapsed_s());
  }
  // The resulting indexes answer identically.
  for (const auto& item : items) {
    const QueryResult a = sequential.query(*item.image, 5);
    const QueryResult b = batched.query(*item.image, 5);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id);
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score);
    }
  }
}

TEST_F(PipelineTest, InsertBatchWithoutPoolIsEquivalent) {
  FastIndex with_pool(small_config(), *pca_);
  FastIndex without_pool(small_config(), *pca_);
  const auto items = batch_of(10);
  util::ThreadPool pool(2);
  with_pool.insert_batch(items, &pool);
  without_pool.insert_batch(items, nullptr);
  EXPECT_EQ(with_pool.size(), without_pool.size());
  EXPECT_EQ(with_pool.group_count(), without_pool.group_count());
}

TEST_F(PipelineTest, QueryBatchMatchesIndividualQueries) {
  FastIndex index(small_config(), *pca_);
  const auto items = batch_of(16);
  index.insert_batch(items);

  std::vector<const img::Image*> queries;
  for (std::size_t i = 0; i < 8; ++i) {
    queries.push_back(&dataset_->photos[i].image);
  }
  util::ThreadPool pool(4);
  const std::vector<QueryResult> batch = index.query_batch(queries, 3, &pool);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult single = index.query(*queries[i], 3);
    ASSERT_EQ(batch[i].hits.size(), single.hits.size());
    EXPECT_DOUBLE_EQ(batch[i].cost.elapsed_s(), single.cost.elapsed_s());
    for (std::size_t h = 0; h < single.hits.size(); ++h) {
      EXPECT_EQ(batch[i].hits[h].id, single.hits[h].id);
      EXPECT_DOUBLE_EQ(batch[i].hits[h].score, single.hits[h].score);
    }
  }
}

TEST_F(PipelineTest, StageInjectionComposesCustomBackends) {
  // Hand the index explicit stages — the config-driven factory is bypassed,
  // so a chained store rides behind a MinHash aggregator even though the
  // config says flat cuckoo.
  FastConfig cfg = small_config();
  auto summarizer = pipeline::make_summarizer(cfg, *pca_);
  auto aggregator = pipeline::make_aggregator(cfg);
  auto store = std::make_unique<hash::ChainedGroupStore>(
      cfg.chained_buckets, cfg.cuckoo.seed, aggregator->table_count());
  FastIndex injected(cfg, std::move(summarizer), std::move(aggregator),
                     std::move(store));
  FastIndex stock(cfg, *pca_);

  const auto items = batch_of(12);
  injected.insert_batch(items);
  stock.insert_batch(items);
  EXPECT_EQ(injected.size(), stock.size());
  // Same aggregation keys + same group-assignment order => same answers,
  // independent of the storage backend.
  for (const auto& item : items) {
    const QueryResult a = injected.query(*item.image, 3);
    const QueryResult b = stock.query(*item.image, 3);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id);
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score);
    }
  }
}

TEST_F(PipelineTest, ChainedBackendSupportsEraseAndRehashFreeInserts) {
  FastConfig cfg = small_config();
  cfg.chs_backend = FastConfig::ChsBackend::kChained;
  FastIndex index(cfg, *pca_);
  const auto items = batch_of(16);
  const auto results = index.insert_batch(items);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.rehashes, 0u);  // chains never displace
  }
  EXPECT_EQ(index.rehash_count(), 0u);

  ASSERT_TRUE(index.erase(3));
  EXPECT_EQ(index.size(), 15u);
  const QueryResult r = index.query(*items[3].image, 5);
  for (const auto& hit : r.hits) EXPECT_NE(hit.id, 3u);
}

}  // namespace
}  // namespace fast::core
