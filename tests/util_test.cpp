#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/codec.hpp"
#include "util/crc32.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/vecmath.hpp"

namespace fast::util {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  constexpr std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_u64(n)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(n), 600);
  }
}

TEST(Rng, UniformIntWithinRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());  // advances
}

// ---------- ZipfDistribution ----------

TEST(Zipf, ValuesInRange) {
  Rng rng(3);
  ZipfDistribution zipf(20, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = zipf(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Zipf, RankOneIsMostFrequent) {
  Rng rng(29);
  ZipfDistribution zipf(10, 1.2);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[10]);
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng(31);
  ZipfDistribution zipf(4, 0.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf(rng)];
  for (int r = 1; r <= 4; ++r) {
    EXPECT_NEAR(counts[r], 10000, 400);
  }
}

// ---------- OnlineStats ----------

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(OnlineStats, MatchesBatchComputation) {
  Rng rng(37);
  OnlineStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / 1000.0;
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 999.0;
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(41);
  OnlineStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian();
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

// ---------- percentile / summarize ----------

TEST(Percentile, MedianOfOddSet) {
  EXPECT_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_EQ(percentile(v, 0.0), 1.0);
  EXPECT_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, Interpolates) {
  // sorted: 0, 10 -> p25 = 2.5
  EXPECT_NEAR(percentile({0, 10}, 0.25), 2.5, 1e-12);
}

TEST(Summarize, BasicFields) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// ---------- vecmath ----------

TEST(VecMath, Dot) {
  const std::vector<float> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(dot(a, b), 32.0);
}

TEST(VecMath, L2Distance) {
  const std::vector<float> a{0, 0}, b{3, 4};
  EXPECT_EQ(l2_distance(a, b), 5.0);
  EXPECT_EQ(l2_distance_sq(a, b), 25.0);
}

TEST(VecMath, NormalizeL2) {
  std::vector<float> v{3, 4};
  normalize_l2(v);
  EXPECT_NEAR(l2_norm(v), 1.0, 1e-6);
  EXPECT_NEAR(v[0], 0.6, 1e-6);
}

TEST(VecMath, NormalizeZeroVectorIsNoop) {
  std::vector<float> v{0, 0, 0};
  normalize_l2(v);
  EXPECT_EQ(v[0], 0.0f);
}

TEST(VecMath, HammingDistance) {
  const std::vector<std::uint64_t> a{0b1010, 0xFF};
  const std::vector<std::uint64_t> b{0b0110, 0x0F};
  EXPECT_EQ(hamming_distance(a, b), 2u + 4u);
}

TEST(VecMath, Popcount) {
  const std::vector<std::uint64_t> w{0xF, 0x1, 0};
  EXPECT_EQ(popcount(w), 5u);
}

TEST(VecMath, MeanVector) {
  const std::vector<std::vector<float>> rows{{1, 2}, {3, 4}};
  const std::vector<float> m = mean_vector(rows);
  EXPECT_EQ(m[0], 2.0f);
  EXPECT_EQ(m[1], 3.0f);
}

// ---------- Table ----------

TEST(Table, TextRenderingContainsCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a"});
  t.add_row({"x,y"});
  t.add_row({"he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableFormat, Duration) {
  EXPECT_EQ(fmt_duration(0.0000005), "0.5us");
  EXPECT_EQ(fmt_duration(0.005), "5.00ms");
  EXPECT_EQ(fmt_duration(2.5), "2.50s");
  EXPECT_EQ(fmt_duration(600), "10.0min");
}

TEST(TableFormat, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512.00B");
  EXPECT_EQ(fmt_bytes(2048), "2.00KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024), "3.50MB");
}

TEST(TableFormat, Percent) {
  EXPECT_EQ(fmt_percent(0.9712), "97.12%");
}

// ---------- ThreadPool ----------

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every non-throwing block still ran to completion before the rethrow —
  // no worker is left touching the (now dead) body closure.
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   hits[i]++;
                                   if (i == 0) throw std::logic_error("first");
                                 }),
               std::logic_error);
  int covered = 0;
  for (auto& h : hits) covered += h.load();
  // Block 0 throws at its first index; the other blocks run fully.
  EXPECT_GE(covered, 64 - 64 / 4);

  // The pool remains fully usable after an exceptional parallel_for.
  std::atomic<int> sum{0};
  pool.parallel_for(32, [&](std::size_t) { sum += 1; });
  EXPECT_EQ(sum.load(), 32);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&sum] { sum += 1; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 200);
}

// ---------- CRC-32 ----------

std::vector<std::uint8_t> ascii(const char* s) {
  std::vector<std::uint8_t> out;
  for (; *s != '\0'; ++s) out.push_back(static_cast<std::uint8_t>(*s));
  return out;
}

TEST(Crc32, KnownAnswers) {
  // The standard check value, plus vectors cross-checked against zlib.
  EXPECT_EQ(crc32(ascii("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(ascii("")), 0x00000000u);
  EXPECT_EQ(crc32(ascii("a")), 0xe8b7be43u);
  EXPECT_EQ(crc32(ascii("The quick brown fox jumps over the lazy dog")),
            0x414fa339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = ascii("FAST snapshot + WAL framing");
  std::uint32_t state = kCrc32Init;
  for (std::size_t i = 0; i < data.size(); i += 5) {
    const std::size_t n = std::min<std::size_t>(5, data.size() - i);
    state = crc32_update(state, std::span(data).subspan(i, n));
  }
  EXPECT_EQ(crc32_finish(state), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = ascii("payload payload payload");
  const std::uint32_t clean = crc32(data);
  for (std::size_t byte : {std::size_t{0}, data.size() / 2, data.size() - 1}) {
    data[byte] ^= 0x01;
    EXPECT_NE(crc32(data), clean) << "flip at byte " << byte;
    data[byte] ^= 0x01;
  }
}

// ---------- Byte codec ----------

TEST(Codec, RoundTripAllPrimitives) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1234.5625);
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  w.blob(payload);
  const std::vector<std::uint8_t> bytes = std::move(w).take();

  ByteReader r{std::span(bytes)};
  EXPECT_EQ(r.u8(), 0xabu);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -1234.5625);
  const auto blob = r.blob();
  EXPECT_TRUE(std::equal(blob.begin(), blob.end(), payload.begin(),
                         payload.end()));
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304u);
  EXPECT_EQ(w.data(), (std::vector<std::uint8_t>{4, 3, 2, 1}));
}

TEST(Codec, ShortReadSetsStickyFailure) {
  const std::vector<std::uint8_t> bytes = {1, 2};
  ByteReader r{std::span(bytes)};
  EXPECT_EQ(r.u64(), 0u);  // fails: only 2 bytes remain
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // sticky: later reads keep failing
  EXPECT_FALSE(r.exhausted());
}

TEST(Codec, TruncatedBlobFails) {
  ByteWriter w;
  w.u32(100);  // claims a 100-byte blob that is not there
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  ByteReader r{std::span(bytes)};
  EXPECT_TRUE(r.blob().empty());
  EXPECT_FALSE(r.ok());
}

// --- checked env/flag parsing -------------------------------------------
// std::atoi silently maps garbage, negatives and overflow to 0, which reads
// as "knob disabled". The checked parsers must reject all of those loudly
// (nullopt) while round-tripping every legitimate value.

TEST(EnvParse, CountAcceptsValidValues) {
  EXPECT_EQ(parse_checked_count("k", "0", 0, 100), 0UL);
  EXPECT_EQ(parse_checked_count("k", "42", 0, 100), 42UL);
  EXPECT_EQ(parse_checked_count("k", "100", 0, 100), 100UL);
}

TEST(EnvParse, CountRejectsGarbageAndRange) {
  EXPECT_EQ(parse_checked_count("k", "", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "abc", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "12abc", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "12 ", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", " 7", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "+7", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "0x20", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "101", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "3", 4, 100), std::nullopt);
  // strtoul would happily wrap "-1" to ULONG_MAX; the checked parser must
  // reject negatives outright.
  EXPECT_EQ(parse_checked_count("k", "-1", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "-0", 0, 100), std::nullopt);
  EXPECT_EQ(parse_checked_count("k", "99999999999999999999999", 0, ~0UL),
            std::nullopt);  // overflow
}

TEST(EnvParse, NumberAcceptsValidValues) {
  EXPECT_EQ(parse_checked_number("r", "0.5", 0.0, 1.0), 0.5);
  EXPECT_EQ(parse_checked_number("r", "0", 0.0, 1.0), 0.0);
  EXPECT_EQ(parse_checked_number("r", "1e-3", 0.0, 1.0), 1e-3);
  EXPECT_EQ(parse_checked_number("r", "-2.5", -10.0, 10.0), -2.5);
}

TEST(EnvParse, NumberRejectsGarbageRangeAndNonFinite) {
  EXPECT_EQ(parse_checked_number("r", "", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "fast", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "0.5x", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "1.5", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "-0.1", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "nan", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "inf", 0.0, 1e308), std::nullopt);
  EXPECT_EQ(parse_checked_number("r", "1e999", 0.0, 1e308), std::nullopt);
}

TEST(EnvParse, EnvCountReadsProcessEnvironment) {
  ::setenv("FAST_TEST_ENV_COUNT", "128", 1);
  EXPECT_EQ(env_count("FAST_TEST_ENV_COUNT", 1, 1024), 128UL);
  ::setenv("FAST_TEST_ENV_COUNT", "bogus", 1);
  EXPECT_EQ(env_count("FAST_TEST_ENV_COUNT", 1, 1024), std::nullopt);
  ::setenv("FAST_TEST_ENV_COUNT", "", 1);  // empty == unset, silent
  EXPECT_EQ(env_count("FAST_TEST_ENV_COUNT", 1, 1024), std::nullopt);
  ::unsetenv("FAST_TEST_ENV_COUNT");
  EXPECT_EQ(env_count("FAST_TEST_ENV_COUNT", 1, 1024), std::nullopt);
}

TEST(EnvParse, EnvNumberReadsProcessEnvironment) {
  ::setenv("FAST_TEST_ENV_NUMBER", "0.25", 1);
  EXPECT_EQ(env_number("FAST_TEST_ENV_NUMBER", 0.0, 1.0), 0.25);
  ::setenv("FAST_TEST_ENV_NUMBER", "2.0", 1);  // out of range
  EXPECT_EQ(env_number("FAST_TEST_ENV_NUMBER", 0.0, 1.0), std::nullopt);
  ::unsetenv("FAST_TEST_ENV_NUMBER");
  EXPECT_EQ(env_number("FAST_TEST_ENV_NUMBER", 0.0, 1.0), std::nullopt);
}

}  // namespace
}  // namespace fast::util
