#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/io.hpp"
#include "storage/page_cache.hpp"
#include "storage/shard.hpp"
#include "storage/snapshot.hpp"
#include "storage/sql_like_store.hpp"
#include "storage/wal.hpp"
#include "util/codec.hpp"
#include "util/crc32.hpp"

namespace fast::storage {
namespace {

/// Fresh empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fast_storage_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// Flips one byte of a file in place (corruption injection for readers).
void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0xff);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

/// Truncates a file to `keep` bytes (torn-tail injection).
void truncate_file(const std::string& path, std::size_t keep) {
  std::filesystem::resize_file(path, keep);
}

SnapshotFile sample_snapshot() {
  SnapshotFile snap;
  snap.config_fingerprint = 0xdeadbeefULL;
  snap.last_seq = 17;
  snap.sections.push_back({kSectionParams, bytes_of({1})});
  snap.sections.push_back({kSectionSignatures, bytes_of({2, 3, 4})});
  snap.sections.push_back({kSectionGroups, {}});
  snap.sections.push_back({kSectionStore, bytes_of({5, 6})});
  return snap;
}

// ---------- PageCache ----------

TEST(PageCache, MissThenHit) {
  PageCache cache(4);
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, EvictsLeastRecentlyUsed) {
  PageCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);  // 1 most recent
  cache.access(3);  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
}

TEST(PageCache, ZeroCapacityAlwaysMisses) {
  PageCache cache(0);
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PageCache, SizeBoundedByCapacity) {
  PageCache cache(3);
  for (std::uint64_t p = 0; p < 100; ++p) cache.access(p);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PageCache, ClearEmpties) {
  PageCache cache(4);
  cache.access(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.access(1));
}

// Regression: clear() used to evict the pages but keep hits_/misses_, so
// hit-rate measurements leaked across bench runs sharing a cache.
TEST(PageCache, ClearResetsHitMissCounters) {
  PageCache cache(4);
  cache.access(1);  // miss
  cache.access(1);  // hit
  ASSERT_EQ(cache.hits(), 1u);
  ASSERT_EQ(cache.misses(), 1u);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // The next access starts a fresh measurement.
  cache.access(1);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, ResetStatsKeepsResidentPages) {
  PageCache cache(4);
  cache.access(1);
  cache.access(2);
  cache.access(1);
  ASSERT_EQ(cache.hits(), 1u);
  ASSERT_EQ(cache.misses(), 2u);
  cache.reset_stats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 2u);
  // Pages stayed resident: these are hits, not refaults.
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 0u);
}

// ---------- SqlLikeStore ----------

TEST(SqlStore, PutChargesWrite) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  store.put(1, 100000, clock);
  EXPECT_GT(clock.elapsed_s(), cost.disk_seek_s);
  EXPECT_EQ(clock.disk_writes(), 1u);
  EXPECT_EQ(store.record_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 100000u);
}

TEST(SqlStore, ReadMissingReturnsNullopt) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  EXPECT_FALSE(store.read(99, clock).has_value());
  EXPECT_EQ(clock.elapsed_s(), 0.0);
}

TEST(SqlStore, ColdReadChargesDiskWarmReadDoesNot) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 1024);
  sim::SimClock w;
  store.put(1, 8192, w);

  sim::SimClock cold;
  EXPECT_EQ(store.read(1, cold).value(), 8192u);
  EXPECT_GE(cold.disk_reads(), 1u);
  EXPECT_GT(cold.elapsed_s(), cost.disk_seek_s);

  sim::SimClock warm;
  store.read(1, warm);
  EXPECT_EQ(warm.disk_reads(), 0u);
  EXPECT_LT(warm.elapsed_s(), cold.elapsed_s());
}

TEST(SqlStore, CacheThrashingKeepsCostHigh) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 2);  // tiny cache
  sim::SimClock w;
  for (std::uint64_t i = 0; i < 20; ++i) store.put(i, 8192, w);
  // Scanning all records twice: second pass still misses (thrash).
  sim::SimClock pass1, pass2;
  for (std::uint64_t i = 0; i < 20; ++i) store.read(i, pass1);
  for (std::uint64_t i = 0; i < 20; ++i) store.read(i, pass2);
  EXPECT_GE(pass2.disk_reads(), pass1.disk_reads() / 2);
}

TEST(SqlStore, PageCountReflectsBytes) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 4);
  sim::SimClock clock;
  store.put(1, cost.disk_page_bytes * 3 + 1, clock);
  EXPECT_EQ(store.page_count(), 4u);
}

TEST(SqlStore, ContainsWorks) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 4);
  sim::SimClock clock;
  store.put(5, 10, clock);
  EXPECT_TRUE(store.contains(5));
  EXPECT_FALSE(store.contains(6));
}

TEST(SqlStore, FlushChargesOneSeekBarrier) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  store.put(1, 1000, clock);
  const double before = clock.elapsed_s();
  store.flush(clock);
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), before + cost.disk_seek_s);
  // Nothing pending: flush is free.
  store.flush(clock);
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), before + cost.disk_seek_s);
}

TEST(SqlStore, CloseFlushesAndIsIdempotent) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  store.put(1, 1000, clock);
  const double before = clock.elapsed_s();
  EXPECT_FALSE(store.closed());
  store.close(clock);
  EXPECT_TRUE(store.closed());
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), before + cost.disk_seek_s);
  store.close(clock);  // no double charge
  EXPECT_DOUBLE_EQ(clock.elapsed_s(), before + cost.disk_seek_s);
  // Metadata queries stay valid on a closed store.
  EXPECT_TRUE(store.contains(1));
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(SqlStoreDeathTest, PutAfterCloseAborts) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  store.close(clock);
  EXPECT_DEATH(store.put(1, 10, clock), "closed store");
}

TEST(SqlStoreDeathTest, ReadAfterCloseAborts) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  store.put(1, 10, clock);
  store.close(clock);
  EXPECT_DEATH(store.read(1, clock), "closed store");
}

// ---------- Status / Env ----------

TEST(IoStatus, DefaultIsOkAndToStringFormats) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "ok");
  Status bad = Status::error(StatusCode::kCorrupt, "bad crc");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kCorrupt);
  EXPECT_NE(bad.to_string().find("bad crc"), std::string::npos);
}

TEST(PosixEnv, WriteSyncReadRoundTrip) {
  const std::string dir = fresh_dir("posix_rt");
  Env& env = Env::posix();
  auto file = env.new_writable(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  const auto data = bytes_of({1, 2, 3, 4, 5});
  ASSERT_TRUE(file.value()->append(data).ok());
  ASSERT_TRUE(file.value()->sync().ok());
  ASSERT_TRUE(file.value()->close().ok());

  auto back = read_file(env, dir + "/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(PosixEnv, MissingFileIsNotFound) {
  Env& env = Env::posix();
  auto r = env.new_sequential(fresh_dir("posix_missing") + "/absent");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PosixEnv, RenameAndListDir) {
  const std::string dir = fresh_dir("posix_ls");
  Env& env = Env::posix();
  auto file = env.new_writable(dir + "/a.tmp", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->close().ok());
  ASSERT_TRUE(env.rename_file(dir + "/a.tmp", dir + "/a").ok());
  EXPECT_TRUE(env.file_exists(dir + "/a"));
  EXPECT_FALSE(env.file_exists(dir + "/a.tmp"));
  auto names = env.list_dir(dir);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names.value().size(), 1u);
  EXPECT_EQ(names.value()[0], "a");
}

// ---------- FaultInjectingEnv ----------

TEST(FaultEnv, DryRunCountsOpsWithoutFiring) {
  const std::string dir = fresh_dir("fault_dry");
  FaultPlan plan;  // Kind::kNone
  FaultInjectingEnv env(Env::posix(), plan);
  auto file = env.new_writable(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of({1, 2, 3})).ok());  // op 0
  ASSERT_TRUE(file.value()->sync().ok());                       // op 1
  ASSERT_TRUE(env.rename_file(dir + "/f", dir + "/g").ok());    // op 2
  EXPECT_EQ(env.ops_attempted(), 3u);
  EXPECT_FALSE(env.crashed());
}

TEST(FaultEnv, UnsyncedAppendsVanishOnCrash) {
  const std::string dir = fresh_dir("fault_unsynced");
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kFail;
  plan.fail_at_op = 2;  // ops: append, sync, append(<- fires)
  FaultInjectingEnv env(Env::posix(), plan);
  auto file = env.new_writable(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  const auto synced = bytes_of({10, 11});
  ASSERT_TRUE(file.value()->append(synced).ok());
  ASSERT_TRUE(file.value()->sync().ok());
  EXPECT_FALSE(file.value()->append(bytes_of({12, 13})).ok());
  EXPECT_TRUE(env.crashed());
  // After the crash every mutating op on the env fails.
  EXPECT_FALSE(env.new_writable(dir + "/other", true).ok());
  EXPECT_FALSE(env.rename_file(dir + "/f", dir + "/g").ok());
  // Only the synced prefix reached the base filesystem.
  auto back = read_file(Env::posix(), dir + "/f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), synced);
}

TEST(FaultEnv, AppendBuffersUntilSync) {
  const std::string dir = fresh_dir("fault_buffered");
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kFail;
  plan.fail_at_op = 1;  // ops: append (buffers, ok), sync(<- fires)
  FaultInjectingEnv env(Env::posix(), plan);
  auto file = env.new_writable(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(bytes_of({1, 2, 3, 4})).ok());
  EXPECT_FALSE(file.value()->sync().ok());
  // The failed sync dropped the page-cache buffer: the file is empty.
  auto back = read_file(Env::posix(), dir + "/f");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(FaultEnv, ShortWriteLeavesDeterministicPrefix) {
  const auto run = [](std::uint64_t seed) {
    const std::string dir =
        fresh_dir("fault_short_" + std::to_string(seed));
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kShortWrite;
    plan.fail_at_op = 0;
    plan.seed = seed;
    FaultInjectingEnv env(Env::posix(), plan);
    auto file = env.new_writable(dir + "/f", true);
    EXPECT_TRUE(file.ok());
    std::vector<std::uint8_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i);
    }
    EXPECT_FALSE(file.value()->append(data).ok());
    auto back = read_file(Env::posix(), dir + "/f");
    EXPECT_TRUE(back.ok());
    // A short write lands a strict prefix of the attempted append.
    EXPECT_LE(back.value().size(), data.size());
    for (std::size_t i = 0; i < back.value().size(); ++i) {
      EXPECT_EQ(back.value()[i], data[i]);
    }
    return back.value();
  };
  // Same seed -> identical surviving bytes; different seed may differ.
  EXPECT_EQ(run(7), run(7));
}

TEST(FaultEnv, TornWriteCorruptsTrailingBytes) {
  const std::string dir = fresh_dir("fault_torn");
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kTornWrite;
  plan.fail_at_op = 0;
  plan.seed = 99;
  FaultInjectingEnv env(Env::posix(), plan);
  auto file = env.new_writable(dir + "/f", true);
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(128, 0x41);
  EXPECT_FALSE(file.value()->append(data).ok());
  auto back = read_file(Env::posix(), dir + "/f");
  ASSERT_TRUE(back.ok());
  // Never longer than the attempted write (prefix + scrambled tail bytes).
  EXPECT_LE(back.value().size(), data.size());
}

// ---------- WAL ----------

TEST(Wal, SegmentNameRoundTrip) {
  const std::string name = wal_segment_name(42);
  std::uint64_t seq = 0;
  ASSERT_TRUE(parse_wal_segment_name(name, &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(parse_wal_segment_name("wal-.log", &seq));
  EXPECT_FALSE(parse_wal_segment_name("snapshot-0.fast", &seq));
  EXPECT_FALSE(parse_wal_segment_name(name + ".tmp", &seq));
}

TEST(Wal, AppendSyncReadRoundTrip) {
  const std::string dir = fresh_dir("wal_rt");
  Env& env = Env::posix();
  auto writer = WalWriter::create(env, dir, 5);
  ASSERT_TRUE(writer.ok());
  WalWriter& w = *writer.value();
  EXPECT_EQ(w.next_seq(), 5u);
  ASSERT_TRUE(w.append(kWalRecordInsert, 100, bytes_of({9, 8, 7})).ok());
  ASSERT_TRUE(w.append(kWalRecordErase, 100, {}).ok());
  ASSERT_TRUE(w.sync().ok());
  ASSERT_TRUE(w.close().ok());
  EXPECT_EQ(w.next_seq(), 7u);

  auto seg = read_wal_segment(env, dir + "/" + wal_segment_name(5));
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(seg.value().start_seq, 5u);
  EXPECT_FALSE(seg.value().torn);
  ASSERT_EQ(seg.value().records.size(), 2u);
  EXPECT_EQ(seg.value().records[0].seq, 5u);
  EXPECT_EQ(seg.value().records[0].type, kWalRecordInsert);
  EXPECT_EQ(seg.value().records[0].id, 100u);
  EXPECT_EQ(seg.value().records[0].payload, bytes_of({9, 8, 7}));
  EXPECT_EQ(seg.value().records[1].seq, 6u);
  EXPECT_EQ(seg.value().records[1].type, kWalRecordErase);
  EXPECT_TRUE(seg.value().records[1].payload.empty());
}

TEST(Wal, CloseIsIdempotentAndSealsAppends) {
  const std::string dir = fresh_dir("wal_close");
  auto writer = WalWriter::create(Env::posix(), dir, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->close().ok());
  EXPECT_TRUE(writer.value()->close().ok());
  EXPECT_FALSE(writer.value()->append(kWalRecordInsert, 1, {}).ok());
}

TEST(Wal, TornTailTruncatesAtFirstBadFrame) {
  const std::string dir = fresh_dir("wal_torn");
  Env& env = Env::posix();
  auto writer = WalWriter::create(env, dir, 1);
  ASSERT_TRUE(writer.ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        writer.value()->append(kWalRecordInsert, i, bytes_of({1, 2})).ok());
  }
  ASSERT_TRUE(writer.value()->sync().ok());
  ASSERT_TRUE(writer.value()->close().ok());

  const std::string path = dir + "/" + wal_segment_name(1);
  const auto full = std::filesystem::file_size(path);
  // Chop mid-way through the last frame: records 1..2 survive, 3 is torn.
  truncate_file(path, static_cast<std::size_t>(full) - 5);

  auto seg = read_wal_segment(env, path);
  ASSERT_TRUE(seg.ok());
  EXPECT_TRUE(seg.value().torn);
  ASSERT_EQ(seg.value().records.size(), 2u);
  EXPECT_EQ(seg.value().records[1].seq, 2u);
}

TEST(Wal, CorruptMidFrameCrcTruncatesThere) {
  const std::string dir = fresh_dir("wal_crc");
  Env& env = Env::posix();
  auto writer = WalWriter::create(env, dir, 1);
  ASSERT_TRUE(writer.ok());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        writer.value()->append(kWalRecordInsert, i, bytes_of({1, 2})).ok());
  }
  ASSERT_TRUE(writer.value()->sync().ok());
  ASSERT_TRUE(writer.value()->close().ok());

  const std::string path = dir + "/" + wal_segment_name(1);
  // Header is 20 bytes; flip a byte inside the second frame's body.
  const std::size_t frame_bytes = 8 + 17 + 2;  // crc+len, fixed body, payload
  flip_byte(path, 20 + frame_bytes + 12);

  auto seg = read_wal_segment(env, path);
  ASSERT_TRUE(seg.ok());
  EXPECT_TRUE(seg.value().torn);
  ASSERT_EQ(seg.value().records.size(), 1u);
  EXPECT_EQ(seg.value().records[0].seq, 1u);
}

TEST(Wal, DamagedHeaderReadsAsEmptyTornSegment) {
  const std::string dir = fresh_dir("wal_hdr");
  Env& env = Env::posix();
  auto writer = WalWriter::create(env, dir, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->append(kWalRecordInsert, 1, {}).ok());
  ASSERT_TRUE(writer.value()->sync().ok());
  ASSERT_TRUE(writer.value()->close().ok());
  const std::string path = dir + "/" + wal_segment_name(1);
  flip_byte(path, 10);  // corrupt the header's start_seq field

  auto seg = read_wal_segment(env, path);
  ASSERT_TRUE(seg.ok());
  EXPECT_TRUE(seg.value().torn);
  EXPECT_TRUE(seg.value().records.empty());
}

TEST(Wal, OtherFastFormatIsBadMagic) {
  // A snapshot handed to the WAL reader is a caller bug (kBadMagic), while
  // arbitrary junk is indistinguishable from a pre-header-sync crash and
  // reads as an empty torn segment.
  const std::string dir = fresh_dir("wal_magic");
  Env& env = Env::posix();
  auto name = write_snapshot(env, dir, sample_snapshot());
  ASSERT_TRUE(name.ok());
  auto seg = read_wal_segment(env, dir + "/" + name.value());
  ASSERT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), StatusCode::kBadMagic);

  auto junk = env.new_writable(dir + "/junk", true);
  ASSERT_TRUE(junk.ok());
  ASSERT_TRUE(junk.value()->append(std::vector<std::uint8_t>(64, 0x5a)).ok());
  ASSERT_TRUE(junk.value()->close().ok());
  auto torn = read_wal_segment(env, dir + "/junk");
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn.value().torn);
  EXPECT_TRUE(torn.value().records.empty());
}

// ---------- Snapshot container ----------

TEST(Snapshot, FileNameRoundTrip) {
  std::uint64_t seq = 0;
  ASSERT_TRUE(parse_snapshot_file_name(snapshot_file_name(17), &seq));
  EXPECT_EQ(seq, 17u);
  EXPECT_FALSE(parse_snapshot_file_name("snapshot-1.fast.tmp", &seq));
  EXPECT_FALSE(parse_snapshot_file_name("wal-1.log", &seq));
}

TEST(Snapshot, WriteReadRoundTrip) {
  const std::string dir = fresh_dir("snap_rt");
  Env& env = Env::posix();
  const SnapshotFile snap = sample_snapshot();
  auto name = write_snapshot(env, dir, snap);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), snapshot_file_name(17));
  // No .tmp left behind after the atomic publish.
  EXPECT_FALSE(env.file_exists(dir + "/" + name.value() + ".tmp"));

  auto back = read_snapshot(env, dir + "/" + name.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().version, kSnapshotFormatVersion);
  EXPECT_EQ(back.value().config_fingerprint, 0xdeadbeefULL);
  EXPECT_EQ(back.value().last_seq, 17u);
  ASSERT_EQ(back.value().sections.size(), 4u);
  ASSERT_NE(back.value().find(kSectionSignatures), nullptr);
  EXPECT_EQ(back.value().find(kSectionSignatures)->payload,
            bytes_of({2, 3, 4}));
  EXPECT_EQ(back.value().find(99), nullptr);
}

TEST(Snapshot, CorruptSectionCrcIsCorrupt) {
  const std::string dir = fresh_dir("snap_crc");
  Env& env = Env::posix();
  auto name = write_snapshot(env, dir, sample_snapshot());
  ASSERT_TRUE(name.ok());
  const std::string path = dir + "/" + name.value();
  flip_byte(path, 40);  // inside the first section, past the 32-byte header
  auto back = read_snapshot(env, path);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorrupt);
}

TEST(Snapshot, TruncatedFileIsCorrupt) {
  const std::string dir = fresh_dir("snap_trunc");
  Env& env = Env::posix();
  auto name = write_snapshot(env, dir, sample_snapshot());
  ASSERT_TRUE(name.ok());
  const std::string path = dir + "/" + name.value();
  truncate_file(path, std::filesystem::file_size(path) - 3);
  auto back = read_snapshot(env, path);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorrupt);
}

TEST(Snapshot, NonSnapshotFileIsBadMagic) {
  const std::string dir = fresh_dir("snap_magic");
  Env& env = Env::posix();
  auto file = env.new_writable(dir + "/junk", true);
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> junk(64, 0x13);
  ASSERT_TRUE(file.value()->append(junk).ok());
  ASSERT_TRUE(file.value()->close().ok());
  auto back = read_snapshot(env, dir + "/junk");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kBadMagic);
}

TEST(Snapshot, FutureVersionIsBadVersion) {
  const std::string dir = fresh_dir("snap_ver");
  Env& env = Env::posix();
  // Hand-craft a header claiming format version 2 with a VALID header CRC,
  // as a future writer would produce it.
  util::ByteWriter header;
  const char magic[8] = {'F', 'A', 'S', 'T', 's', 'n', 'p', '1'};
  for (char c : magic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kSnapshotFormatVersion + 1);
  header.u64(0);   // fingerprint
  header.u64(0);   // last_seq
  std::vector<std::uint8_t> bytes = std::move(header).take();
  util::ByteWriter with_crc;
  with_crc.bytes(bytes);
  with_crc.u32(util::crc32(bytes));
  auto file = env.new_writable(dir + "/future.fast", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->append(std::move(with_crc).take()).ok());
  ASSERT_TRUE(file.value()->close().ok());

  auto back = read_snapshot(env, dir + "/future.fast");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kBadVersion);
  EXPECT_NE(back.status().message().find("version"), std::string::npos);
}

TEST(Snapshot, TamperedVersionFailsHeaderCrc) {
  const std::string dir = fresh_dir("snap_tamper");
  Env& env = Env::posix();
  auto name = write_snapshot(env, dir, sample_snapshot());
  ASSERT_TRUE(name.ok());
  const std::string path = dir + "/" + name.value();
  flip_byte(path, 8);  // version field, without fixing the header CRC
  auto back = read_snapshot(env, path);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorrupt);
}

TEST(ShardMap, StableAssignment) {
  ShardMap shards(8);
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(shards.shard_of(id), shards.shard_of(id));
    EXPECT_LT(shards.shard_of(id), 8u);
  }
}

TEST(ShardMap, RoughlyUniform) {
  ShardMap shards(4);
  std::vector<int> counts(4, 0);
  for (std::uint64_t id = 0; id < 10000; ++id) {
    ++counts[shards.shard_of(id)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2500, 300);
  }
}

TEST(ShardMap, PartitionCoversAll) {
  ShardMap shards(3);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 50; ++i) ids.push_back(i);
  const auto parts = shards.partition(ids);
  ASSERT_EQ(parts.size(), 3u);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 50u);
}

TEST(ShardMap, ZeroShardsClampedToOne) {
  ShardMap shards(0);
  EXPECT_EQ(shards.shard_count(), 1u);
  EXPECT_EQ(shards.shard_of(123), 0u);
}

}  // namespace
}  // namespace fast::storage
