#include <gtest/gtest.h>

#include "storage/page_cache.hpp"
#include "storage/shard.hpp"
#include "storage/sql_like_store.hpp"

namespace fast::storage {
namespace {

// ---------- PageCache ----------

TEST(PageCache, MissThenHit) {
  PageCache cache(4);
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, EvictsLeastRecentlyUsed) {
  PageCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);  // 1 most recent
  cache.access(3);  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
}

TEST(PageCache, ZeroCapacityAlwaysMisses) {
  PageCache cache(0);
  EXPECT_FALSE(cache.access(1));
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(PageCache, SizeBoundedByCapacity) {
  PageCache cache(3);
  for (std::uint64_t p = 0; p < 100; ++p) cache.access(p);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PageCache, ClearEmpties) {
  PageCache cache(4);
  cache.access(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.access(1));
}

// Regression: clear() used to evict the pages but keep hits_/misses_, so
// hit-rate measurements leaked across bench runs sharing a cache.
TEST(PageCache, ClearResetsHitMissCounters) {
  PageCache cache(4);
  cache.access(1);  // miss
  cache.access(1);  // hit
  ASSERT_EQ(cache.hits(), 1u);
  ASSERT_EQ(cache.misses(), 1u);
  cache.clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // The next access starts a fresh measurement.
  cache.access(1);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, ResetStatsKeepsResidentPages) {
  PageCache cache(4);
  cache.access(1);
  cache.access(2);
  cache.access(1);
  ASSERT_EQ(cache.hits(), 1u);
  ASSERT_EQ(cache.misses(), 2u);
  cache.reset_stats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 2u);
  // Pages stayed resident: these are hits, not refaults.
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 0u);
}

// ---------- SqlLikeStore ----------

TEST(SqlStore, PutChargesWrite) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  store.put(1, 100000, clock);
  EXPECT_GT(clock.elapsed_s(), cost.disk_seek_s);
  EXPECT_EQ(clock.disk_writes(), 1u);
  EXPECT_EQ(store.record_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 100000u);
}

TEST(SqlStore, ReadMissingReturnsNullopt) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 16);
  sim::SimClock clock;
  EXPECT_FALSE(store.read(99, clock).has_value());
  EXPECT_EQ(clock.elapsed_s(), 0.0);
}

TEST(SqlStore, ColdReadChargesDiskWarmReadDoesNot) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 1024);
  sim::SimClock w;
  store.put(1, 8192, w);

  sim::SimClock cold;
  EXPECT_EQ(store.read(1, cold).value(), 8192u);
  EXPECT_GE(cold.disk_reads(), 1u);
  EXPECT_GT(cold.elapsed_s(), cost.disk_seek_s);

  sim::SimClock warm;
  store.read(1, warm);
  EXPECT_EQ(warm.disk_reads(), 0u);
  EXPECT_LT(warm.elapsed_s(), cold.elapsed_s());
}

TEST(SqlStore, CacheThrashingKeepsCostHigh) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 2);  // tiny cache
  sim::SimClock w;
  for (std::uint64_t i = 0; i < 20; ++i) store.put(i, 8192, w);
  // Scanning all records twice: second pass still misses (thrash).
  sim::SimClock pass1, pass2;
  for (std::uint64_t i = 0; i < 20; ++i) store.read(i, pass1);
  for (std::uint64_t i = 0; i < 20; ++i) store.read(i, pass2);
  EXPECT_GE(pass2.disk_reads(), pass1.disk_reads() / 2);
}

TEST(SqlStore, PageCountReflectsBytes) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 4);
  sim::SimClock clock;
  store.put(1, cost.disk_page_bytes * 3 + 1, clock);
  EXPECT_EQ(store.page_count(), 4u);
}

TEST(SqlStore, ContainsWorks) {
  sim::CostModel cost;
  SqlLikeStore store(cost, 4);
  sim::SimClock clock;
  store.put(5, 10, clock);
  EXPECT_TRUE(store.contains(5));
  EXPECT_FALSE(store.contains(6));
}

// ---------- ShardMap ----------

TEST(ShardMap, StableAssignment) {
  ShardMap shards(8);
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(shards.shard_of(id), shards.shard_of(id));
    EXPECT_LT(shards.shard_of(id), 8u);
  }
}

TEST(ShardMap, RoughlyUniform) {
  ShardMap shards(4);
  std::vector<int> counts(4, 0);
  for (std::uint64_t id = 0; id < 10000; ++id) {
    ++counts[shards.shard_of(id)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2500, 300);
  }
}

TEST(ShardMap, PartitionCoversAll) {
  ShardMap shards(3);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 50; ++i) ids.push_back(i);
  const auto parts = shards.partition(ids);
  ASSERT_EQ(parts.size(), 3u);
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 50u);
}

TEST(ShardMap, ZeroShardsClampedToOne) {
  ShardMap shards(0);
  EXPECT_EQ(shards.shard_count(), 1u);
  EXPECT_EQ(shards.shard_of(123), 0u);
}

}  // namespace
}  // namespace fast::storage
