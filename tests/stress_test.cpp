// Concurrency stress tests, built to run under TSan: a mixed
// insert/query/erase/batch workload hammers ConcurrentFastIndex from many
// threads at once, and ShardedFastIndex serves concurrent scatter-gather
// queries between (single-writer) batch-ingest phases. Invariants checked
// throughout: no crashes/races, scores stay in [0, 1], acknowledged inserts
// remain retrievable, and the metrics registry's counts add up.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_index.hpp"
#include "core/sharded_index.hpp"
#include "test_helpers.hpp"

namespace fast::core {
namespace {

class StressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(32));
    pca_ = new vision::PcaModel(test::fake_pca());
    FastIndex helper(small_config(), *pca_);
    sigs_ = new std::vector<hash::SparseSignature>();
    for (const auto& photo : dataset_->photos) {
      sigs_->push_back(helper.summarize(photo.image));
    }
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    delete sigs_;
    dataset_ = nullptr;
    pca_ = nullptr;
    sigs_ = nullptr;
  }
  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 512;
    return cfg;
  }
  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
  static std::vector<hash::SparseSignature>* sigs_;
};

workload::Dataset* StressTest::dataset_ = nullptr;
vision::PcaModel* StressTest::pca_ = nullptr;
std::vector<hash::SparseSignature>* StressTest::sigs_ = nullptr;

// The headline stress: one per-item writer (insert/erase), one batch writer
// (insert_batch), readers mixing query_signature, query_batch and size()
// probes, all racing on one ConcurrentFastIndex.
TEST_F(StressTest, MixedInsertQueryEraseBatchRace) {
  ConcurrentFastIndex index(small_config(), *pca_, 2);
  const std::size_t n = sigs_->size();
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> violations{0};

  // Writer A: per-item inserts and erases over a rolling id window.
  std::thread item_writer([&] {
    for (std::size_t round = 0; round < 8; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        index.insert_signature(1000 + round * n + i, (*sigs_)[i]);
      }
      for (std::size_t i = 0; i < n / 2; ++i) {
        index.erase(1000 + round * n + i);
      }
    }
  });

  // Writer B: batch ingests under a disjoint id range (ids >= 100000).
  std::thread batch_writer([&] {
    std::vector<BatchImage> items;
    for (std::size_t i = 0; i < 12; ++i) {
      items.push_back(BatchImage{0, &dataset_->photos[i].image});
    }
    for (std::size_t round = 0; round < 6; ++round) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        items[i].id = 100000 + round * items.size() + i;
      }
      const auto results = index.insert_batch(items);
      if (results.size() != items.size()) ++violations;
    }
  });

  // Readers: single queries, batch queries, and size() probes.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::size_t qi = static_cast<std::size_t>(r);
      std::vector<const img::Image*> batch{&dataset_->photos[0].image,
                                           &dataset_->photos[1].image};
      while (!stop) {
        const QueryResult res = index.query_signature((*sigs_)[qi % n], 5);
        for (const auto& hit : res.hits) {
          if (hit.score < 0.0 || hit.score > 1.0) ++violations;
        }
        if (qi % 7 == 0) {
          const auto results = index.query_batch(batch, 3);
          if (results.size() != batch.size()) ++violations;
        }
        if (qi % 11 == 0) (void)index.size();
        ++qi;
        // Brief off-lock pause so readers never starve the writers of the
        // exclusive lock (shared_mutex makes no fairness promise, and the
        // TSan job magnifies reader critical sections ~10x).
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  item_writer.join();
  batch_writer.join();
  stop = true;
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  // Writer A leaves n/2 ids per round; writer B lands 6 batches of 12.
  EXPECT_EQ(index.size(), 8 * (n - n / 2) + 6 * 12);
  // Ids the writers left in place are still retrievable.
  for (std::size_t i = n / 2; i < n; ++i) {
    const QueryResult res = index.query_signature((*sigs_)[i], 1);
    ASSERT_FALSE(res.hits.empty());
    EXPECT_DOUBLE_EQ(res.hits.front().score, 1.0);
  }
  // The shared registry counted every acknowledged mutation.
  const util::MetricsSnapshot snap = index.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("index.inserts"), 8 * n + 6 * 12);
  EXPECT_EQ(snap.counters.at("index.erases"), 8 * (n / 2));
  EXPECT_GE(snap.counters.at("concurrent.reader_locks"), 1u);
}

// Re-inserting the same ids from many threads must never duplicate
// membership or leak stale signatures (exercises the erase-then-insert
// re-insert path under contention).
TEST_F(StressTest, ConcurrentReinsertsConverge) {
  ConcurrentFastIndex index(small_config(), *pca_, 2);
  const std::size_t n = 8;
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t round = 0; round < 25; ++round) {
        for (std::size_t i = 0; i < n; ++i) {
          // Every thread keeps re-inserting the SAME id set, rotating which
          // signature each id maps to.
          index.insert_signature(i, (*sigs_)[(i + round + t) % sigs_->size()]);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(index.size(), n);
  const FastIndex& inner = index.unsafe_inner();
  // An id legitimately belongs to one group per aggregator table, but must
  // never appear twice within the same group (the duplicate-membership
  // re-insert bug).
  for (std::size_t g = 0; g < inner.group_count(); ++g) {
    const auto members = inner.group_members(g);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t appearances = static_cast<std::size_t>(
          std::count(members.begin(), members.end(), i));
      EXPECT_LE(appearances, 1u) << "id " << i << " in group " << g;
    }
  }
}

// ShardedFastIndex writers are not internally synchronized, so ingest runs
// in single-writer phases; between them, many threads issue scatter-gather
// queries concurrently (the shared native pool takes submissions from all
// of them at once).
TEST_F(StressTest, ShardedConcurrentQueriesBetweenBatchPhases) {
  ShardedFastIndex index(small_config(), *pca_, 4, 2);
  const std::size_t n = sigs_->size();

  for (std::size_t round = 0; round < 3; ++round) {
    // Single-writer ingest phase.
    std::vector<BatchImage> items;
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(BatchImage{round * n + i, &dataset_->photos[i].image});
    }
    const auto results = index.insert_batch(items);
    ASSERT_EQ(results.size(), items.size());

    // Concurrent read phase: every thread fires scatter-gather queries.
    std::atomic<std::size_t> violations{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&, r] {
        for (std::size_t q = 0; q < 20; ++q) {
          const std::size_t qi = (static_cast<std::size_t>(r) + q) % n;
          const QueryResult res = index.query_signature((*sigs_)[qi], 3);
          if (res.hits.empty()) ++violations;
          for (const auto& hit : res.hits) {
            if (hit.score < 0.0 || hit.score > 1.0) ++violations;
            if (hit.id % n >= n) ++violations;
          }
        }
      });
    }
    for (auto& t : readers) t.join();
    EXPECT_EQ(violations.load(), 0u) << "round " << round;
    EXPECT_EQ(index.size(), (round + 1) * n);
  }

  const util::MetricsSnapshot snap = index.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("sharded.queries"), 3u * 4u * 20u);
  EXPECT_EQ(snap.counters.at("sharded.inserts"), 3u * n);
  // Every query scattered to all four shards; every ingested item cost one
  // routing message to its owner shard.
  EXPECT_EQ(snap.counters.at("sharded.scatter_msgs"),
            snap.counters.at("sharded.queries") * index.shard_count() + 3u * n);
}

}  // namespace
}  // namespace fast::core
