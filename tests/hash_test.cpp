#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "hash/aggregators.hpp"
#include "hash/bloom_filter.hpp"
#include "hash/compact_flat_cuckoo_table.hpp"
#include "hash/counting_bloom.hpp"
#include "hash/cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/hashes.hpp"
#include "hash/lsh_table_chained.hpp"
#include "hash/ls_bloom_filter.hpp"
#include "hash/minhash.hpp"
#include "hash/multi_probe.hpp"
#include "hash/pstable_lsh.hpp"
#include "hash/sparse_signature.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace fast::hash {
namespace {

// ---------- hash primitives ----------

TEST(Hashes, Murmur3Deterministic) {
  const Hash128 a = murmur3_128("hello world");
  const Hash128 b = murmur3_128("hello world");
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(Hashes, Murmur3SeedChangesOutput) {
  const Hash128 a = murmur3_128("hello", 1);
  const Hash128 b = murmur3_128("hello", 2);
  EXPECT_NE(a.lo, b.lo);
}

TEST(Hashes, Murmur3SensitiveToEveryByte) {
  std::string s(40, 'a');
  const Hash128 base = murmur3_128(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::string mutated = s;
    mutated[i] = 'b';
    EXPECT_NE(murmur3_128(mutated).lo, base.lo) << "byte " << i;
  }
}

TEST(Hashes, Murmur3HandlesAllTailLengths) {
  // Exercise every switch-case tail (0..15 bytes beyond block boundary).
  std::set<std::uint64_t> seen;
  for (std::size_t len = 0; len <= 32; ++len) {
    std::string s(len, 'x');
    seen.insert(murmur3_128(s).lo);
  }
  EXPECT_EQ(seen.size(), 33u);  // all distinct
}

TEST(Hashes, Fnv1aKnownValue) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a_64("", 0), 0xcbf29ce484222325ULL);
}

TEST(Hashes, Mix64Bijective) {
  // Distinct inputs -> distinct outputs across a decent sample.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(Hashes, DerivedHashLinear) {
  const Hash128 h{10, 3};
  EXPECT_EQ(derived_hash(h, 0), 10u);
  EXPECT_EQ(derived_hash(h, 4), 22u);
}

// ---------- BloomFilter ----------

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bf(1024, 4);
  for (std::uint64_t i = 0; i < 50; ++i) bf.insert_u64(i);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(bf.maybe_contains_u64(i));
  }
}

TEST(Bloom, AbsentMostlyRejected) {
  BloomFilter bf(4096, 8);
  for (std::uint64_t i = 0; i < 100; ++i) bf.insert_u64(i);
  int fp = 0;
  for (std::uint64_t i = 1000; i < 2000; ++i) {
    if (bf.maybe_contains_u64(i)) ++fp;
  }
  EXPECT_LT(fp, 20);
}

TEST(Bloom, EmptyRejectsEverything) {
  BloomFilter bf(256, 4);
  EXPECT_FALSE(bf.maybe_contains_u64(1));
  EXPECT_EQ(bf.set_bit_count(), 0u);
}

TEST(Bloom, SetBitsBounded) {
  BloomFilter bf(1024, 4);
  bf.insert_u64(42);
  EXPECT_LE(bf.set_bit_count(), 4u);
  EXPECT_GE(bf.set_bit_count(), 1u);
}

TEST(Bloom, MergeIsUnion) {
  BloomFilter a(512, 4), b(512, 4);
  a.insert_u64(1);
  b.insert_u64(2);
  a.merge(b);
  EXPECT_TRUE(a.maybe_contains_u64(1));
  EXPECT_TRUE(a.maybe_contains_u64(2));
}

TEST(Bloom, ClearResets) {
  BloomFilter bf(512, 4);
  bf.insert_u64(7);
  bf.clear();
  EXPECT_FALSE(bf.maybe_contains_u64(7));
  EXPECT_EQ(bf.inserted_count(), 0u);
}

TEST(Bloom, SimilarSetsShareBits) {
  // Two filters over sets sharing 80% of elements have small Hamming
  // distance relative to disjoint sets — the property SM relies on.
  BloomFilter a(4096, 8), b(4096, 8), c(4096, 8);
  for (std::uint64_t i = 0; i < 100; ++i) a.insert_u64(i);
  for (std::uint64_t i = 20; i < 120; ++i) b.insert_u64(i);      // 80% shared
  for (std::uint64_t i = 1000; i < 1100; ++i) c.insert_u64(i);   // disjoint
  EXPECT_LT(BloomFilter::hamming(a, b), BloomFilter::hamming(a, c));
}

TEST(Bloom, FloatVectorMatchesBits) {
  BloomFilter bf(256, 2);
  bf.insert_u64(5);
  const auto v = bf.to_float_vector();
  ASSERT_EQ(v.size(), 256u);
  std::size_t ones = 0;
  for (float x : v) {
    EXPECT_TRUE(x == 0.0f || x == 1.0f);
    ones += x == 1.0f;
  }
  EXPECT_EQ(ones, bf.set_bit_count());
}

// Property sweep: the empirical false-positive rate tracks the analytic
// (1 - e^{-kn/m})^k model across configurations.
struct BloomParams {
  std::size_t bits;
  std::size_t k;
  std::size_t n;
};

class BloomFprTest : public ::testing::TestWithParam<BloomParams> {};

TEST_P(BloomFprTest, EmpiricalFprMatchesTheory) {
  const auto [bits, k, n] = GetParam();
  BloomFilter bf(bits, k);
  for (std::uint64_t i = 0; i < n; ++i) bf.insert_u64(i);
  std::size_t fp = 0;
  constexpr std::size_t kProbes = 20000;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    if (bf.maybe_contains_u64(1000000 + i)) ++fp;
  }
  const double empirical = static_cast<double>(fp) / kProbes;
  const double theory = bf.false_positive_rate();
  EXPECT_NEAR(empirical, theory, std::max(0.02, theory * 0.5));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BloomFprTest,
    ::testing::Values(BloomParams{1024, 4, 50}, BloomParams{1024, 4, 200},
                      BloomParams{4096, 8, 200}, BloomParams{4096, 2, 400},
                      BloomParams{16384, 8, 1000},
                      BloomParams{512, 6, 100}));

// ---------- CountingBloomFilter ----------

TEST(CountingBloom, InsertThenRemove) {
  CountingBloomFilter cbf(2048, 4);
  cbf.insert_u64(9);
  EXPECT_TRUE(cbf.maybe_contains_u64(9));
  cbf.remove_u64(9);
  EXPECT_FALSE(cbf.maybe_contains_u64(9));
}

TEST(CountingBloom, RemoveKeepsOtherKeys) {
  CountingBloomFilter cbf(4096, 4);
  for (std::uint64_t i = 0; i < 50; ++i) cbf.insert_u64(i);
  cbf.remove_u64(25);
  for (std::uint64_t i = 0; i < 50; ++i) {
    if (i == 25) continue;
    EXPECT_TRUE(cbf.maybe_contains_u64(i)) << i;
  }
}

TEST(CountingBloom, DuplicateInsertNeedsTwoRemoves) {
  CountingBloomFilter cbf(2048, 4);
  cbf.insert_u64(3);
  cbf.insert_u64(3);
  cbf.remove_u64(3);
  EXPECT_TRUE(cbf.maybe_contains_u64(3));
  cbf.remove_u64(3);
  EXPECT_FALSE(cbf.maybe_contains_u64(3));
}

TEST(CountingBloom, SaturationDetected) {
  CountingBloomFilter cbf(64, 2);
  for (std::uint64_t i = 0; i < 600; ++i) cbf.insert_u64(i);
  EXPECT_GT(cbf.saturation_count(), 0u);
}

// ---------- SparseSignature ----------

TEST(SparseSignature, ExtractsSetBits) {
  BloomFilter bf(256, 3);
  bf.insert_u64(17);
  const SparseSignature sig(bf);
  EXPECT_EQ(sig.popcount(), bf.set_bit_count());
  EXPECT_EQ(sig.bit_count(), 256u);
  const auto v = sig.to_float_vector();
  EXPECT_EQ(v, bf.to_float_vector());
}

TEST(SparseSignature, HammingMatchesDense) {
  util::Rng rng(1);
  BloomFilter a(1024, 4), b(1024, 4);
  for (int i = 0; i < 60; ++i) a.insert_u64(rng.next_u64());
  for (int i = 0; i < 60; ++i) b.insert_u64(rng.next_u64());
  const SparseSignature sa(a), sb(b);
  EXPECT_EQ(SparseSignature::hamming(sa, sb), BloomFilter::hamming(a, b));
}

TEST(SparseSignature, JaccardBounds) {
  BloomFilter a(512, 4), b(512, 4);
  a.insert_u64(1);
  b.insert_u64(1);
  const SparseSignature sa(a), sb(b);
  EXPECT_DOUBLE_EQ(SparseSignature::jaccard(sa, sa), 1.0);
  EXPECT_DOUBLE_EQ(SparseSignature::jaccard(sa, sb), 1.0);  // same bits
}

TEST(SparseSignature, JaccardDisjointIsZero) {
  const SparseSignature a({1, 2, 3}, 64);
  const SparseSignature b({10, 20}, 64);
  EXPECT_EQ(SparseSignature::jaccard(a, b), 0.0);
  EXPECT_EQ(SparseSignature::overlap(a, b), 0u);
  EXPECT_EQ(SparseSignature::hamming(a, b), 5u);
}

TEST(SparseSignature, EmptyPairJaccardIsOne) {
  const SparseSignature a({}, 64), b({}, 64);
  EXPECT_EQ(SparseSignature::jaccard(a, b), 1.0);
}

TEST(SparseSignature, StorageBytesTracksPopcount) {
  const SparseSignature small({1}, 1024);
  const SparseSignature big({1, 2, 3, 4, 5, 6, 7, 8}, 1024);
  EXPECT_LT(small.storage_bytes(), big.storage_bytes());
}

// ---------- p-stable LSH ----------

TEST(PStableLsh, DeterministicKeys) {
  LshConfig cfg;
  cfg.dim = 16;
  PStableLsh lsh(cfg);
  std::vector<float> v(16, 0.5f);
  EXPECT_EQ(lsh.all_keys(v), lsh.all_keys(v));
}

TEST(PStableLsh, IdenticalVectorsAlwaysCollide) {
  LshConfig cfg;
  cfg.dim = 8;
  PStableLsh lsh(cfg);
  std::vector<float> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> w = v;
  for (std::size_t t = 0; t < cfg.tables; ++t) {
    EXPECT_EQ(lsh.bucket_coords(t, v), lsh.bucket_coords(t, w));
  }
}

TEST(PStableLsh, CollisionProbabilityDecreasesWithDistance) {
  // Analytic p(c) is monotonically decreasing in c.
  double prev = PStableLsh::collision_probability(0.0, 1.0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (double c : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const double p = PStableLsh::collision_probability(c, 1.0);
    EXPECT_LT(p, prev);
    EXPECT_GE(p, 0.0);
    prev = p;
  }
}

TEST(PStableLsh, EmpiricalCollisionMatchesTheory) {
  LshConfig cfg;
  cfg.dim = 32;
  cfg.tables = 1;
  cfg.hashes_per_table = 400;  // 400 independent elementary hashes
  cfg.omega = 1.0;
  PStableLsh lsh(cfg);
  util::Rng rng(5);
  std::vector<float> v(32);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  for (double dist : {0.25, 0.5, 1.0}) {
    // w = v + offset of norm `dist` along a random direction.
    std::vector<float> dir(32);
    for (auto& x : dir) x = static_cast<float>(rng.gaussian());
    double n = 0;
    for (float x : dir) n += x * x;
    n = std::sqrt(n);
    std::vector<float> w = v;
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] += static_cast<float>(dir[i] / n * dist);
    }
    std::size_t collisions = 0;
    for (std::size_t j = 0; j < cfg.hashes_per_table; ++j) {
      if (lsh.hash_one(0, j, v) == lsh.hash_one(0, j, w)) ++collisions;
    }
    const double empirical =
        static_cast<double>(collisions) / cfg.hashes_per_table;
    const double theory = PStableLsh::collision_probability(dist, cfg.omega);
    EXPECT_NEAR(empirical, theory, 0.08) << "dist " << dist;
  }
}

TEST(PStableLsh, BucketKeySaltsByTable) {
  LshConfig cfg;
  cfg.dim = 4;
  PStableLsh lsh(cfg);
  const BucketCoords coords{1, 2, 3};
  EXPECT_NE(lsh.bucket_key(0, coords), lsh.bucket_key(1, coords));
}

// ---------- sparse-gather projection parity ----------

std::vector<std::uint32_t> random_sorted_bits(std::size_t dim, std::size_t nnz,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::set<std::uint32_t> bits;
  while (bits.size() < nnz) {
    bits.insert(static_cast<std::uint32_t>(rng.uniform_u64(dim)));
  }
  return {bits.begin(), bits.end()};
}

// The sparse kernel must reproduce the dense projection bit for bit:
// identical coordinates and identical bucket keys, across dims, seeds,
// scales, and sparsity levels from empty through dense-ish (half the bits).
TEST(PStableLshSparse, BitExactParityWithDensePath) {
  SparseProjectionScratch scratch;
  for (const std::size_t dim : {std::size_t{256}, std::size_t{4096},
                                std::size_t{16384}}) {
    for (const std::uint64_t seed : {std::uint64_t{0x15b},
                                     std::uint64_t{7}}) {
      LshConfig cfg;
      cfg.dim = dim;
      cfg.seed = seed;
      const PStableLsh lsh(cfg);
      const std::size_t m = cfg.hashes_per_table;
      for (const std::size_t nnz :
           {std::size_t{0}, std::size_t{1}, std::size_t{64}, dim / 2}) {
        for (const float scale : {1.0f, 0.0371f}) {
          const auto bits = random_sorted_bits(dim, nnz, seed ^ nnz);
          // Dense reference input, exactly as the pre-sparse aggregator
          // built it: densify to {0,1} floats, then scale.
          std::vector<float> dense(dim, 0.0f);
          for (const std::uint32_t b : bits) dense[b] = 1.0f;
          for (float& x : dense) x *= scale;

          const std::span<const std::int32_t> coords =
              lsh.bucket_coords_sparse(bits, scale, scratch);
          ASSERT_EQ(coords.size(), cfg.tables * m);
          const std::span<const std::uint64_t> keys =
              lsh.all_keys_sparse(bits, scale, scratch);
          const std::vector<std::uint64_t> dense_keys = lsh.all_keys(dense);
          for (std::size_t t = 0; t < cfg.tables; ++t) {
            const BucketCoords expected = lsh.bucket_coords(t, dense);
            for (std::size_t j = 0; j < m; ++j) {
              ASSERT_EQ(coords[t * m + j], expected[j])
                  << "dim " << dim << " seed " << seed << " nnz " << nnz
                  << " scale " << scale << " table " << t << " hash " << j;
            }
            ASSERT_EQ(lsh.bucket_key(t, coords.subspan(t * m, m)),
                      lsh.bucket_key(t, expected));
            ASSERT_EQ(keys[t], dense_keys[t]);
          }
        }
      }
    }
  }
}

TEST(PStableLshSparse, EmptySignatureUsesOffsetsOnly) {
  LshConfig cfg;
  cfg.dim = 256;
  const PStableLsh lsh(cfg);
  SparseProjectionScratch scratch;
  const std::vector<float> zeros(cfg.dim, 0.0f);
  const std::span<const std::uint64_t> keys =
      lsh.all_keys_sparse({}, 1.0f, scratch);
  const std::vector<std::uint64_t> dense_keys = lsh.all_keys(zeros);
  ASSERT_EQ(keys.size(), dense_keys.size());
  for (std::size_t t = 0; t < dense_keys.size(); ++t) {
    EXPECT_EQ(keys[t], dense_keys[t]);
  }
}

// Adapter-level parity: PStableAggregator::keys (home + multi-probe keys)
// must equal a dense reference computed the way the pre-sparse adapter did
// (densify, scale as float, project per table).
TEST(PStableAggregator, KeysAndProbesMatchDenseReference) {
  LshConfig cfg;
  cfg.dim = 4096;
  const double input_scale = 0.42;
  const int probe_depth = 1;
  const PStableAggregator agg(cfg, probe_depth, input_scale);
  const PStableLsh ref(cfg);
  for (const std::size_t nnz : {std::size_t{0}, std::size_t{307}}) {
    const SparseSignature sig(random_sorted_bits(cfg.dim, nnz, 0x99 + nnz),
                              static_cast<std::uint32_t>(cfg.dim));
    std::vector<std::vector<std::uint64_t>> probes;
    const std::vector<std::uint64_t> keys = agg.keys(sig, &probes);

    std::vector<float> dense = sig.to_float_vector();
    for (float& x : dense) x *= static_cast<float>(input_scale);
    ASSERT_EQ(keys.size(), cfg.tables);
    ASSERT_EQ(probes.size(), cfg.tables);
    for (std::size_t t = 0; t < cfg.tables; ++t) {
      const BucketCoords home = ref.bucket_coords(t, dense);
      EXPECT_EQ(keys[t], ref.bucket_key(t, home));
      const auto seq = probe_sequence(home, probe_depth);
      ASSERT_EQ(probes[t].size(), seq.size());
      for (std::size_t p = 0; p < seq.size(); ++p) {
        EXPECT_EQ(probes[t][p], ref.bucket_key(t, seq[p]));
      }
    }
  }
}

TEST(PStableLshSparse, ScratchReuseAcrossConfigsIsSafe) {
  // One thread-local scratch serves aggregators of different geometry; a
  // call must fully re-initialize whatever a previous config left behind.
  SparseProjectionScratch scratch;
  LshConfig big;
  big.dim = 4096;
  const PStableLsh big_lsh(big);
  const auto big_bits = random_sorted_bits(big.dim, 128, 3);
  (void)big_lsh.all_keys_sparse(big_bits, 1.0f, scratch);

  LshConfig small;
  small.dim = 256;
  small.tables = 3;
  small.hashes_per_table = 4;
  const PStableLsh small_lsh(small);
  const auto small_bits = random_sorted_bits(small.dim, 32, 4);
  std::vector<float> dense(small.dim, 0.0f);
  for (const std::uint32_t b : small_bits) dense[b] = 1.0f;
  const std::span<const std::uint64_t> keys =
      small_lsh.all_keys_sparse(small_bits, 1.0f, scratch);
  const std::vector<std::uint64_t> dense_keys = small_lsh.all_keys(dense);
  ASSERT_EQ(keys.size(), dense_keys.size());
  for (std::size_t t = 0; t < dense_keys.size(); ++t) {
    EXPECT_EQ(keys[t], dense_keys[t]);
  }
}

// ---------- multi-probe ----------

TEST(MultiProbe, Depth0IsEmpty) {
  EXPECT_TRUE(probe_sequence({1, 2, 3}, 0).empty());
  EXPECT_EQ(probe_count(3, 0), 0u);
}

TEST(MultiProbe, Depth1EnumeratesSingleSteps) {
  const auto probes = probe_sequence({5, 5}, 1);
  EXPECT_EQ(probes.size(), probe_count(2, 1));
  EXPECT_EQ(probes.size(), 4u);
  std::set<BucketCoords> expected{{4, 5}, {6, 5}, {5, 4}, {5, 6}};
  for (const auto& p : probes) {
    EXPECT_TRUE(expected.count(p)) << "unexpected probe";
  }
}

TEST(MultiProbe, Depth2AddsPairPerturbations) {
  const auto probes = probe_sequence({0, 0, 0}, 2);
  EXPECT_EQ(probes.size(), probe_count(3, 2));
  EXPECT_EQ(probes.size(), 2u * 3 + 2u * 3 * 2);
  // All probes distinct.
  std::set<BucketCoords> unique(probes.begin(), probes.end());
  EXPECT_EQ(unique.size(), probes.size());
}

// ---------- chained LSH table ----------

TEST(ChainedTable, InsertAndFindAll) {
  LshTableChained table(16);
  table.insert(7, 100);
  table.insert(7, 101);
  table.insert(8, 200);
  const auto vals = table.find(7);
  EXPECT_EQ(vals.size(), 2u);
  EXPECT_TRUE((vals[0] == 100 && vals[1] == 101) ||
              (vals[0] == 101 && vals[1] == 100));
}

TEST(ChainedTable, ProbeCountGrowsWithChain) {
  LshTableChained table(1);  // everything in one bucket
  for (std::uint64_t i = 0; i < 20; ++i) table.insert(i, i);
  std::size_t probes = 0;
  table.find(0, &probes);
  EXPECT_EQ(probes, 20u);  // walks the whole chain: vertical addressing
  EXPECT_EQ(table.max_chain_length(), 20u);
}

TEST(ChainedTable, MissingKeyEmpty) {
  LshTableChained table(8);
  table.insert(1, 1);
  EXPECT_TRUE(table.find(99).empty());
}

// ---------- standard cuckoo ----------

TEST(Cuckoo, InsertFindErase) {
  CuckooTable t(64);
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_TRUE(t.insert(2, 20));
  EXPECT_EQ(t.find(1).value(), 10u);
  EXPECT_EQ(t.find(2).value(), 20u);
  EXPECT_FALSE(t.find(3).has_value());
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.find(1).has_value());
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Cuckoo, OverwriteExistingKey) {
  CuckooTable t(64);
  EXPECT_TRUE(t.insert(5, 1));
  EXPECT_TRUE(t.insert(5, 2));
  EXPECT_EQ(t.find(5).value(), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Cuckoo, AllInsertedKeysFindableAtModerateLoad) {
  CuckooTable t(1024);
  // 40% load: standard 2-choice cuckoo handles this comfortably.
  for (std::uint64_t i = 0; i < 409; ++i) {
    ASSERT_TRUE(t.insert(i, i * 2)) << "key " << i;
  }
  for (std::uint64_t i = 0; i < 409; ++i) {
    ASSERT_EQ(t.find(i).value(), i * 2);
  }
}

TEST(Cuckoo, FailureRollsBackExactly) {
  // Fill a tiny table to force an insertion failure, then verify every
  // previously inserted key is still present with its value.
  CuckooTable t(16, 0x5eed1, 32);
  std::vector<std::uint64_t> inserted;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (t.insert(i, i + 1000)) {
      inserted.push_back(i);
    } else {
      break;
    }
  }
  EXPECT_GT(t.stats().failures + (64 - inserted.size()), 0u);
  for (std::uint64_t k : inserted) {
    ASSERT_EQ(t.find(k).value(), k + 1000) << "lost key after failure";
  }
}

TEST(Cuckoo, HighLoadEventuallyFails) {
  CuckooTable t(128, 7, 100);
  std::size_t ok = 0;
  for (std::uint64_t i = 0; i < 128; ++i) ok += t.insert(i, i);
  EXPECT_LT(ok, 128u);  // 100% load is beyond 2-choice cuckoo
  EXPECT_GT(t.stats().failures, 0u);
}

// ---------- flat cuckoo ----------

TEST(FlatCuckoo, InsertFindErase) {
  FlatCuckooConfig cfg;
  cfg.capacity = 64;
  FlatCuckooTable t(cfg);
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_EQ(t.find(1).value(), 10u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.contains(1));
}

TEST(FlatCuckoo, OverwriteInPlace) {
  FlatCuckooConfig cfg;
  cfg.capacity = 64;
  FlatCuckooTable t(cfg);
  t.insert(9, 1);
  t.insert(9, 2);
  EXPECT_EQ(t.find(9).value(), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatCuckoo, SustainsHighLoad) {
  FlatCuckooConfig cfg;
  cfg.capacity = 1024;
  cfg.window = 4;
  FlatCuckooTable t(cfg);
  // 90% load: far beyond standard cuckoo, fine with W=4 neighborhoods.
  std::size_t ok = 0;
  for (std::uint64_t i = 0; i < 921; ++i) ok += t.insert(i, i);
  EXPECT_EQ(ok, 921u);
  for (std::uint64_t i = 0; i < 921; ++i) {
    ASSERT_TRUE(t.contains(i));
  }
}

TEST(FlatCuckoo, ProbesPerLookupIsTwoW) {
  FlatCuckooConfig cfg;
  cfg.window = 4;
  FlatCuckooTable t(cfg);
  EXPECT_EQ(t.probes_per_lookup(), 8u);
}

TEST(FlatCuckoo, FarFewerFailuresThanStandardAtEqualLoad) {
  // The Fig. 6 property, at test scale: load both tables to 85% and
  // compare failure counts.
  constexpr std::size_t kCap = 2048;
  constexpr std::size_t kItems = 1741;  // 85%
  std::size_t std_failures = 0, flat_failures = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    CuckooTable std_table(kCap, seed, 200);
    FlatCuckooConfig cfg;
    cfg.capacity = kCap;
    cfg.seed = seed;
    cfg.max_kicks = 200;
    FlatCuckooTable flat_table(cfg);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      std_failures += !std_table.insert(i, i);
      flat_failures += !flat_table.insert(i, i);
    }
  }
  EXPECT_EQ(flat_failures, 0u);
  EXPECT_GT(std_failures, 0u);
}

TEST(FlatCuckoo, FailureRollsBackExactly) {
  FlatCuckooConfig cfg;
  cfg.capacity = 32;
  cfg.window = 2;
  cfg.max_kicks = 16;
  FlatCuckooTable t(cfg);
  std::vector<std::uint64_t> inserted;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (t.insert(i, i * 3)) inserted.push_back(i);
  }
  for (std::uint64_t k : inserted) {
    ASSERT_EQ(t.find(k).value(), k * 3);
  }
}

// A failed insert must be a perfect no-op: same size, the failed key
// absent, every resident key still mapped to its exact value and still
// erasable, and the failure visible in stats(). Checked at the moment of
// the first failure, not just at the end.
TEST(FlatCuckoo, FailedInsertIsANoOp) {
  FlatCuckooConfig cfg;
  cfg.capacity = 16;
  cfg.window = 1;  // minimal associativity so failures arrive quickly
  cfg.max_kicks = 4;
  FlatCuckooTable t(cfg);

  std::map<std::uint64_t, std::uint64_t> resident;
  std::uint64_t failed_key = 0;
  bool failed = false;
  for (std::uint64_t i = 0; i < 64 && !failed; ++i) {
    const std::uint64_t key = 0x9e3779b9ULL * (i + 1);
    if (t.insert(key, i)) {
      resident[key] = i;
    } else {
      failed = true;
      failed_key = key;
    }
  }
  ASSERT_TRUE(failed) << "table absorbed 64 keys into 16 slots";

  EXPECT_EQ(t.size(), resident.size());
  EXPECT_FALSE(t.contains(failed_key));
  EXPECT_GE(t.stats().failures, 1u);
  for (const auto& [key, value] : resident) {
    const auto found = t.find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_EQ(*found, value) << key;
  }
  // The rolled-back table is fully functional: every key erases cleanly.
  for (const auto& [key, value] : resident) {
    EXPECT_TRUE(t.erase(key)) << key;
  }
  EXPECT_EQ(t.size(), 0u);
}

// ---------- fingerprint-compressed flat cuckoo ----------

TEST(CompactFlatCuckoo, InsertFindErase) {
  FlatCuckooConfig cfg;
  cfg.capacity = 64;
  CompactFlatCuckooTable t(cfg);
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_EQ(t.find(1).value(), 10u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.size(), 0u);
}

TEST(CompactFlatCuckoo, OverwriteInPlace) {
  FlatCuckooConfig cfg;
  cfg.capacity = 64;
  CompactFlatCuckooTable t(cfg);
  t.insert(9, 1);
  t.insert(9, 2);
  EXPECT_EQ(t.find(9).value(), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CompactFlatCuckoo, SustainsHighLoad) {
  FlatCuckooConfig cfg;
  cfg.capacity = 1024;
  cfg.window = 4;
  CompactFlatCuckooTable t(cfg);
  std::size_t ok = 0;
  for (std::uint64_t i = 0; i < 921; ++i) ok += t.insert(i, i);
  EXPECT_EQ(ok, 921u);
  for (std::uint64_t i = 0; i < 921; ++i) {
    ASSERT_TRUE(t.contains(i));
    ASSERT_EQ(t.find(i).value(), i);
  }
}

TEST(CompactFlatCuckoo, ProbesPerLookupIsTwoW) {
  FlatCuckooConfig cfg;
  cfg.window = 4;
  CompactFlatCuckooTable t(cfg);
  EXPECT_EQ(t.probes_per_lookup(), 8u);
}

TEST(CompactFlatCuckoo, FailedInsertIsANoOp) {
  FlatCuckooConfig cfg;
  cfg.capacity = 16;
  cfg.window = 1;
  cfg.max_kicks = 4;
  CompactFlatCuckooTable t(cfg);

  std::map<std::uint64_t, std::uint64_t> resident;
  std::uint64_t failed_key = 0;
  bool failed = false;
  for (std::uint64_t i = 0; i < 64 && !failed; ++i) {
    const std::uint64_t key = 0x9e3779b9ULL * (i + 1);
    if (t.insert(key, i)) {
      resident[key] = i;
    } else {
      failed = true;
      failed_key = key;
    }
  }
  ASSERT_TRUE(failed) << "table absorbed 64 keys into 16 slots";

  // Rollback must also return the failed key's side-array entry to the free
  // list: size, residents, and erasability all intact.
  EXPECT_EQ(t.size(), resident.size());
  EXPECT_FALSE(t.contains(failed_key));
  EXPECT_GE(t.stats().failures, 1u);
  for (const auto& [key, value] : resident) {
    const auto found = t.find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_EQ(*found, value) << key;
  }
  for (const auto& [key, value] : resident) {
    EXPECT_TRUE(t.erase(key)) << key;
  }
  EXPECT_EQ(t.size(), 0u);
  // The freed side entries are reusable: the table refills to the same
  // occupancy it reached before.
  for (const auto& [key, value] : resident) {
    EXPECT_TRUE(t.insert(key, value)) << key;
  }
  EXPECT_EQ(t.size(), resident.size());
}

// A key whose 16-bit fingerprint collides with a resident key's must fall
// back to full-key verification: the lookup reports a fingerprint false
// hit but returns not-found, and an erase of the colliding key must not
// evict the resident one.
TEST(CompactFlatCuckoo, FingerprintCollisionFallsBackToFullKey) {
  FlatCuckooConfig cfg;
  cfg.capacity = 4;  // tiny table: candidate windows overlap heavily
  cfg.window = 2;
  CompactFlatCuckooTable t(cfg);
  const std::uint64_t resident = 0xfeedULL;
  ASSERT_TRUE(t.insert(resident, 7));

  // Brute-force a distinct key with the same 16-bit fingerprint that also
  // scans the resident key's slot.
  bool collided = false;
  for (std::uint64_t k = 1; k < 4'000'000 && !collided; ++k) {
    if (k == resident || t.fingerprint(k) != t.fingerprint(resident)) {
      continue;
    }
    ProbeProfile profile;
    const auto found = t.find(k, &profile);
    if (profile.fingerprint_false_hits == 0) continue;  // windows disjoint
    collided = true;
    EXPECT_FALSE(found.has_value());
    EXPECT_FALSE(t.erase(k));
    EXPECT_EQ(t.find(resident).value(), 7u);
    EXPECT_EQ(t.size(), 1u);
  }
  EXPECT_TRUE(collided) << "no fingerprint-colliding probe key found";
}

TEST(CompactFlatCuckoo, SerializeRoundTrip) {
  FlatCuckooConfig cfg;
  cfg.capacity = 256;
  cfg.window = 4;
  cfg.seed = 0x5eed;
  CompactFlatCuckooTable t(cfg);
  for (std::uint64_t i = 0; i < 180; ++i) {
    ASSERT_TRUE(t.insert(mix64(i), i));
  }
  ASSERT_TRUE(t.erase(mix64(3)));

  util::ByteWriter out;
  t.serialize(out);
  util::ByteReader in(out.data());
  auto back = CompactFlatCuckooTable::deserialize(in);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), t.size());
  for (std::uint64_t i = 0; i < 180; ++i) {
    EXPECT_EQ(back->find(mix64(i)), t.find(mix64(i))) << i;
  }
  // The deserialized table keeps working (kick RNG reseeded): inserts and
  // erases behave identically to the original from here on.
  for (std::uint64_t i = 200; i < 230; ++i) {
    EXPECT_EQ(back->insert(mix64(i), i), t.insert(mix64(i), i)) << i;
  }
  EXPECT_EQ(back->size(), t.size());
}

TEST(CompactFlatCuckoo, DeserializeRejectsCorruptBytes) {
  FlatCuckooConfig cfg;
  cfg.capacity = 64;
  CompactFlatCuckooTable t(cfg);
  for (std::uint64_t i = 0; i < 40; ++i) ASSERT_TRUE(t.insert(mix64(i), i));
  util::ByteWriter out;
  t.serialize(out);

  {  // truncated
    const auto& bytes = out.data();
    util::ByteReader in(std::span(bytes.data(), bytes.size() / 2));
    EXPECT_FALSE(CompactFlatCuckooTable::deserialize(in).has_value());
  }
  {  // bad magic
    std::vector<std::uint8_t> bytes = out.data();
    bytes[0] ^= 0xff;
    util::ByteReader in(bytes);
    EXPECT_FALSE(CompactFlatCuckooTable::deserialize(in).has_value());
  }
}

// Lockstep property test: the compact table is parity-by-construction with
// the flat table — same salts, same candidate geometry, same kick RNG
// stream — so a random history of inserts, overwrites, erases and
// re-inserts (driven well past the load where inserts start failing) must
// produce identical outcomes on both, op by op, including the rollback
// path of failed inserts.
TEST(CompactFlatCuckoo, LockstepParityWithFlatUnderRandomHistory) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    FlatCuckooConfig cfg;
    cfg.capacity = 128;
    cfg.window = 2;
    cfg.max_kicks = 32;
    cfg.seed = 0xbead + seed;
    FlatCuckooTable flat(cfg);
    CompactFlatCuckooTable compact(cfg);

    util::Rng rng(0x1057 + seed);
    std::size_t failures = 0;
    for (std::size_t op = 0; op < 4000; ++op) {
      // Key universe ~2x capacity keeps the table saturated so the kick
      // and rollback paths run constantly.
      const std::uint64_t key = mix64(rng.uniform_u64(256));
      switch (rng.uniform_u64(4)) {
        case 0:
        case 1: {  // insert / overwrite / re-insert
          const bool f = flat.insert(key, op);
          const bool c = compact.insert(key, op);
          ASSERT_EQ(f, c) << "insert diverged at op " << op;
          failures += !f;
          break;
        }
        case 2: {  // erase
          ASSERT_EQ(flat.erase(key), compact.erase(key)) << "op " << op;
          break;
        }
        default: {  // find
          ASSERT_EQ(flat.find(key), compact.find(key)) << "op " << op;
          break;
        }
      }
      ASSERT_EQ(flat.size(), compact.size()) << "op " << op;
    }
    EXPECT_GT(failures, 0u) << "history never exercised the rollback path";
    // Full-universe sweep at the end: every key agrees.
    for (std::uint64_t u = 0; u < 256; ++u) {
      ASSERT_EQ(flat.find(mix64(u)), compact.find(mix64(u))) << u;
    }
  }
}

// ---------- MinHash ----------

TEST(MinHash, DeterministicBands) {
  MinHasher mh(MinHashConfig{});
  const SparseSignature sig({1, 5, 9, 100}, 4096);
  const auto m1 = mh.minhashes(sig);
  const auto m2 = mh.minhashes(sig);
  for (std::size_t b = 0; b < mh.config().bands; ++b) {
    EXPECT_EQ(mh.band_key(b, m1), mh.band_key(b, m2));
  }
}

TEST(MinHash, IdenticalSignaturesShareAllBands) {
  MinHasher mh(MinHashConfig{});
  const SparseSignature a({2, 4, 8, 16, 32}, 1024);
  const SparseSignature b({2, 4, 8, 16, 32}, 1024);
  const auto ma = mh.minhashes(a), mb = mh.minhashes(b);
  for (std::size_t band = 0; band < mh.config().bands; ++band) {
    EXPECT_EQ(mh.band_key(band, ma), mh.band_key(band, mb));
  }
}

TEST(MinHash, CollisionRateTracksJaccard) {
  // Build sets with known Jaccard and verify per-hash minhash agreement.
  MinHashConfig cfg;
  cfg.bands = 256;
  cfg.band_size = 1;  // 256 independent minhashes
  MinHasher mh(cfg);
  util::Rng rng(3);
  for (double target_j : {0.2, 0.5, 0.8}) {
    // |A| = |B| = 300 with shared fraction s: J = s / (2 - s).
    const double s = 2 * target_j / (1 + target_j);
    const auto shared = static_cast<std::uint32_t>(300 * s);
    std::vector<std::uint32_t> a, b;
    for (std::uint32_t i = 0; i < shared; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (std::uint32_t i = shared; i < 300; ++i) {
      a.push_back(10000 + i);
      b.push_back(20000 + i);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const SparseSignature sa(a, 1 << 16), sb(b, 1 << 16);
    const double j = SparseSignature::jaccard(sa, sb);
    const auto ma = mh.minhashes(sa), mb = mh.minhashes(sb);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < cfg.bands; ++i) {
      agree += ma[i].min == mb[i].min;
    }
    EXPECT_NEAR(static_cast<double>(agree) / cfg.bands, j, 0.09)
        << "target J " << target_j;
  }
}

TEST(MinHash, ProbeKeysDifferFromHomeKey) {
  MinHasher mh(MinHashConfig{.bands = 4, .band_size = 3, .seed = 1});
  const SparseSignature sig({1, 2, 3, 4, 5, 6, 7, 8}, 4096);
  const auto m = mh.minhashes(sig);
  for (std::size_t band = 0; band < 4; ++band) {
    const auto probes = mh.probe_keys(band, m);
    EXPECT_EQ(probes.size(), 3u);
    for (std::uint64_t p : probes) {
      EXPECT_NE(p, mh.band_key(band, m));
    }
  }
}

TEST(MinHash, CollisionProbabilityFormula) {
  EXPECT_NEAR(MinHasher::collision_probability(1.0, 10, 2), 1.0, 1e-12);
  EXPECT_NEAR(MinHasher::collision_probability(0.0, 10, 2), 0.0, 1e-12);
  const double p1 = MinHasher::collision_probability(0.5, 10, 2);
  const double p2 = MinHasher::collision_probability(0.3, 10, 2);
  EXPECT_GT(p1, p2);
}

// ---------- Locality-Sensitive Bloom Filter ----------

TEST(Lsbf, InsertedVectorIsNear) {
  LsbfConfig cfg;
  cfg.lsh.dim = 16;
  cfg.lsh.omega = 4.0;
  cfg.threshold = 5;
  LocalitySensitiveBloomFilter lsbf(cfg);
  std::vector<float> v(16, 1.0f);
  lsbf.insert(v);
  EXPECT_TRUE(lsbf.maybe_near(v));
  EXPECT_EQ(lsbf.near_score(v), 1.0);
}

TEST(Lsbf, FarVectorRejected) {
  LsbfConfig cfg;
  cfg.lsh.dim = 16;
  cfg.lsh.omega = 0.5;
  LocalitySensitiveBloomFilter lsbf(cfg);
  std::vector<float> v(16, 0.0f);
  lsbf.insert(v);
  std::vector<float> far(16, 100.0f);
  EXPECT_FALSE(lsbf.maybe_near(far));
  EXPECT_LT(lsbf.near_score(far), 0.5);
}

TEST(Lsbf, NearbyVectorScoresHigherThanFar) {
  LsbfConfig cfg;
  cfg.lsh.dim = 8;
  cfg.lsh.omega = 2.0;
  cfg.lsh.tables = 32;
  LocalitySensitiveBloomFilter lsbf(cfg);
  std::vector<float> v{1, 2, 3, 4, 5, 6, 7, 8};
  lsbf.insert(v);
  std::vector<float> near = v;
  near[0] += 0.05f;
  std::vector<float> far = v;
  for (auto& x : far) x += 50.0f;
  EXPECT_GT(lsbf.near_score(near), lsbf.near_score(far));
}

}  // namespace
}  // namespace fast::hash
