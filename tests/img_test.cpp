#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "img/draw.hpp"
#include "img/image.hpp"
#include "img/pnm_io.hpp"
#include "img/transform.hpp"
#include "util/rng.hpp"

namespace fast::img {
namespace {

// ---------- Image ----------

TEST(Image, ConstructionAndFill) {
  Image im(4, 3, 0.5f);
  EXPECT_EQ(im.width(), 4u);
  EXPECT_EQ(im.height(), 3u);
  EXPECT_EQ(im.pixel_count(), 12u);
  EXPECT_EQ(im.at(2, 1), 0.5f);
}

TEST(Image, AtClampedReplicatesBorder) {
  Image im(2, 2);
  im.at(0, 0) = 1.0f;
  im.at(1, 1) = 0.25f;
  EXPECT_EQ(im.at_clamped(-5, -5), 1.0f);
  EXPECT_EQ(im.at_clamped(10, 10), 0.25f);
}

TEST(Image, BilinearInterpolatesMidpoint) {
  Image im(2, 1);
  im.at(0, 0) = 0.0f;
  im.at(1, 0) = 1.0f;
  EXPECT_NEAR(im.sample_bilinear(0.5, 0.0), 0.5f, 1e-6);
}

TEST(Image, BilinearExactAtPixelCenters) {
  Image im(3, 3);
  im.at(1, 1) = 0.7f;
  EXPECT_NEAR(im.sample_bilinear(1.0, 1.0), 0.7f, 1e-6);
}

TEST(Image, Clamp01) {
  Image im(2, 1);
  im.at(0, 0) = -0.5f;
  im.at(1, 0) = 1.5f;
  im.clamp01();
  EXPECT_EQ(im.at(0, 0), 0.0f);
  EXPECT_EQ(im.at(1, 0), 1.0f);
}

TEST(Image, Downsample2HalvesDimensions) {
  Image im(8, 6, 0.3f);
  const Image d = im.downsample2();
  EXPECT_EQ(d.width(), 4u);
  EXPECT_EQ(d.height(), 3u);
  EXPECT_EQ(d.at(0, 0), 0.3f);
}

TEST(Image, Upsample2DoublesDimensions) {
  Image im(3, 2, 0.6f);
  const Image u = im.upsample2();
  EXPECT_EQ(u.width(), 6u);
  EXPECT_EQ(u.height(), 4u);
  EXPECT_NEAR(u.at(2, 2), 0.6f, 1e-6);
}

// ---------- PGM I/O ----------

TEST(PnmIo, RoundTrip) {
  Image im(5, 4);
  util::Rng rng(1);
  for (float& p : im.pixels()) p = static_cast<float>(rng.next_double());
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_test.pgm").string();
  write_pgm(im, path);
  const Image back = read_pgm(path);
  ASSERT_EQ(back.width(), im.width());
  ASSERT_EQ(back.height(), im.height());
  for (std::size_t y = 0; y < im.height(); ++y) {
    for (std::size_t x = 0; x < im.width(); ++x) {
      EXPECT_NEAR(back.at(x, y), im.at(x, y), 1.0 / 255.0 + 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(PnmIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_pgm("/nonexistent/nope.pgm"), std::runtime_error);
}

TEST(PnmIo, RejectsNonPgm) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_notpgm.txt").string();
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("hello", f);
  std::fclose(f);
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------- Drawing ----------

TEST(Draw, GradientTopToBottom) {
  Image im(2, 5);
  fill_gradient(im, 0.0f, 1.0f);
  EXPECT_EQ(im.at(0, 0), 0.0f);
  EXPECT_EQ(im.at(0, 4), 1.0f);
  EXPECT_LT(im.at(0, 1), im.at(0, 3));
}

TEST(Draw, RectClipped) {
  Image im(4, 4, 0.0f);
  fill_rect(im, -10, -10, 2, 2, 1.0f);
  EXPECT_EQ(im.at(0, 0), 1.0f);
  EXPECT_EQ(im.at(1, 1), 1.0f);
  EXPECT_EQ(im.at(2, 2), 0.0f);
}

TEST(Draw, RectFullyOutsideIsNoop) {
  Image im(4, 4, 0.2f);
  fill_rect(im, 10, 10, 20, 20, 1.0f);
  for (float p : im.pixels()) EXPECT_EQ(p, 0.2f);
}

TEST(Draw, CircleCoversCenter) {
  Image im(9, 9, 0.0f);
  fill_circle(im, 4, 4, 2.5, 1.0f);
  EXPECT_EQ(im.at(4, 4), 1.0f);
  EXPECT_EQ(im.at(4, 6), 1.0f);
  EXPECT_EQ(im.at(0, 0), 0.0f);
}

TEST(Draw, TriangleContainsCentroid) {
  Image im(20, 20, 0.0f);
  fill_triangle(im, 2, 18, 18, 18, 10, 2, 1.0f);
  EXPECT_EQ(im.at(10, 12), 1.0f);  // inside
  EXPECT_EQ(im.at(2, 2), 0.0f);    // outside
}

TEST(Draw, TextureIsDeterministic) {
  Image a(16, 16, 0.5f), b(16, 16, 0.5f);
  add_texture(a, 0, 0, 16, 16, 0.1f, 99);
  add_texture(b, 0, 0, 16, 16, 0.1f, 99);
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    EXPECT_EQ(a.pixels()[i], b.pixels()[i]);
  }
}

TEST(Draw, TextureChangesWithSeed) {
  Image a(16, 16, 0.5f), b(16, 16, 0.5f);
  add_texture(a, 0, 0, 16, 16, 0.1f, 1);
  add_texture(b, 0, 0, 16, 16, 0.1f, 2);
  bool different = false;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    if (a.pixels()[i] != b.pixels()[i]) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(Draw, ScatterBlobsStaysInRegion) {
  Image im(20, 20, 0.5f);
  scatter_blobs(im, 5, 5, 15, 15, 10, 1.0, 2.0, 42);
  // Pixels far outside the region + max radius must be untouched.
  EXPECT_EQ(im.at(0, 0), 0.5f);
  EXPECT_EQ(im.at(19, 19), 0.5f);
}

// ---------- Transforms ----------

TEST(Transform, IdentityWarpPreservesImage) {
  Image im(10, 10);
  util::Rng rng(5);
  for (float& p : im.pixels()) p = static_cast<float>(rng.next_double());
  const Image out = warp_affine(im, Affine{});
  for (std::size_t i = 0; i < im.pixel_count(); ++i) {
    EXPECT_NEAR(out.pixels()[i], im.pixels()[i], 1e-6);
  }
}

TEST(Transform, TranslationShiftsContent) {
  Image im(10, 10, 0.0f);
  im.at(5, 5) = 1.0f;
  Affine t;  // in = out + (1, 0): shifts content left by 1
  t.tx = 1.0;
  const Image out = warp_affine(im, t);
  EXPECT_NEAR(out.at(4, 5), 1.0f, 1e-6);
}

TEST(Transform, SimilarityRoundTripNearIdentity) {
  // Rotating by a and then by -a about the same center reproduces the
  // interior of the image (borders clamp). Smooth content so interpolation
  // blur stays small.
  Image im(32, 32, 0.5f);
  add_texture(im, 0, 0, 32, 32, 0.3f, 9);
  const Affine fwd = Affine::similarity(0.3, 1.0, 16, 16);
  const Affine bwd = Affine::similarity(-0.3, 1.0, 16, 16);
  const Image out = warp_affine(warp_affine(im, fwd), bwd);
  double err = 0;
  int n = 0;
  for (std::size_t y = 10; y < 22; ++y) {
    for (std::size_t x = 10; x < 22; ++x) {
      err += std::abs(out.at(x, y) - im.at(x, y));
      ++n;
    }
  }
  EXPECT_LT(err / n, 0.08);  // interpolation blur only
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  const Affine a = Affine::similarity(0.2, 1.1, 8, 8);
  Affine b;
  b.tx = 2.0;
  b.ty = -1.0;
  const Affine ab = a.compose(b);
  // (a ∘ b)(p) == a(b(p))
  const double px = 3.0, py = 4.0;
  const double bx = b.a00 * px + b.a01 * py + b.tx;
  const double by = b.a10 * px + b.a11 * py + b.ty;
  const double ax = a.a00 * bx + a.a01 * by + a.tx;
  const double ay = a.a10 * bx + a.a11 * by + a.ty;
  const double cx = ab.a00 * px + ab.a01 * py + ab.tx;
  const double cy = ab.a10 * px + ab.a11 * py + ab.ty;
  EXPECT_NEAR(ax, cx, 1e-12);
  EXPECT_NEAR(ay, cy, 1e-12);
}

TEST(Transform, NoiseChangesPixelsWithinClamp) {
  Image im(16, 16, 0.5f);
  util::Rng rng(3);
  add_gaussian_noise(im, 0.05, rng);
  bool changed = false;
  for (float p : im.pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    if (p != 0.5f) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Transform, ZeroNoiseIsNoop) {
  Image im(4, 4, 0.25f);
  util::Rng rng(3);
  add_gaussian_noise(im, 0.0, rng);
  for (float p : im.pixels()) EXPECT_EQ(p, 0.25f);
}

TEST(Transform, IlluminationGainAndBias) {
  Image im(2, 1);
  im.at(0, 0) = 0.4f;
  im.at(1, 0) = 0.9f;
  adjust_illumination(im, 1.2, 0.05);
  EXPECT_NEAR(im.at(0, 0), 0.53f, 1e-5);
  EXPECT_EQ(im.at(1, 0), 1.0f);  // clamped
}

TEST(Transform, NearDuplicateIsDeterministicPerRngState) {
  Image im(24, 24, 0.5f);
  add_texture(im, 0, 0, 24, 24, 0.2f, 7);
  util::Rng r1(11), r2(11);
  const Image a = make_near_duplicate(im, {}, r1);
  const Image b = make_near_duplicate(im, {}, r2);
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    EXPECT_EQ(a.pixels()[i], b.pixels()[i]);
  }
}

TEST(Transform, NearDuplicateDiffersFromOriginal) {
  Image im(24, 24, 0.5f);
  add_texture(im, 0, 0, 24, 24, 0.2f, 7);
  util::Rng rng(11);
  const Image dup = make_near_duplicate(im, {}, rng);
  double diff = 0;
  for (std::size_t i = 0; i < im.pixel_count(); ++i) {
    diff += std::abs(dup.pixels()[i] - im.pixels()[i]);
  }
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace fast::img
