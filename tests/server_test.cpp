// Serving front door tests (DESIGN.md §3g): wire-protocol round trips,
// the loopback server against an in-process ground truth, admission
// control, graceful shutdown with zero acked-write loss, and the
// QueryEngine mutating facade's bit-identical parity with direct index
// writes.
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.hpp"
#include "core/tiered_index.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace fast::server {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fast_server_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::FastConfig flat_config() {
  core::FastConfig cfg;
  cfg.cuckoo.capacity = 256;
  return cfg;
}

core::FastConfig tiered_config() {
  core::FastConfig cfg = flat_config();
  cfg.tier.enabled = true;
  cfg.tier.seal_threshold = 8;
  cfg.tier.lanes = 2;
  cfg.tier.compact_fanin = 2;
  cfg.tier.compact_trigger = 2;
  cfg.tier.background = false;
  return cfg;
}

/// Deterministic synthetic signature: same key, same signature — so the
/// wire workload and the in-process ground truth see identical bytes.
hash::SparseSignature make_signature(std::uint64_t key,
                                     std::size_t bloom_bits,
                                     std::size_t popcount = 96) {
  util::Rng rng(key * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  const std::uint32_t max_step =
      static_cast<std::uint32_t>(bloom_bits / (popcount + 1));
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(max_step));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(std::move(bits),
                               static_cast<std::uint32_t>(bloom_bits));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// --- Protocol round trips --------------------------------------------------

TEST(ServerProtocolTest, RequestRoundTrips) {
  const auto sig = make_signature(7, 16384);
  const auto body = encode_insert(42, 7, sig);
  Request req;
  std::string error;
  ASSERT_TRUE(decode_request(body, &req, &error)) << error;
  EXPECT_EQ(req.op, Op::kInsert);
  EXPECT_EQ(req.seq, 42u);
  ASSERT_EQ(req.insert_ids.size(), 1u);
  EXPECT_EQ(req.insert_ids[0], 7u);
  ASSERT_EQ(req.sigs.size(), 1u);
  EXPECT_EQ(req.sigs[0].set_bits(), sig.set_bits());

  const std::vector<std::uint64_t> ids = {1, 2, 3};
  const std::vector<hash::SparseSignature> sigs = {
      make_signature(1, 4096), make_signature(2, 4096),
      make_signature(3, 4096)};
  const auto batch = encode_insert_batch(9, ids, sigs);
  ASSERT_TRUE(decode_request(batch, &req, &error)) << error;
  EXPECT_EQ(req.op, Op::kInsertBatch);
  ASSERT_EQ(req.insert_ids.size(), 3u);
  EXPECT_EQ(req.sigs[2].set_bits(), sigs[2].set_bits());

  const auto query = encode_query_batch(11, 5, sigs);
  ASSERT_TRUE(decode_request(query, &req, &error)) << error;
  EXPECT_EQ(req.op, Op::kQueryBatch);
  EXPECT_EQ(req.k, 5u);
  ASSERT_EQ(req.sigs.size(), 3u);

  const auto erase = encode_erase_batch(13, ids);
  ASSERT_TRUE(decode_request(erase, &req, &error)) << error;
  EXPECT_EQ(req.ids, ids);
}

TEST(ServerProtocolTest, ResponseRoundTrips) {
  Response in;
  in.op = Op::kQuery;
  in.seq = 77;
  in.status = Status::kOk;
  in.results = {{{5, 0.75}, {9, 0.5}}, {}};
  const auto body = encode_response(in);
  Response out;
  std::string error;
  ASSERT_TRUE(decode_response(body, &out, &error)) << error;
  EXPECT_EQ(out.seq, 77u);
  ASSERT_EQ(out.results.size(), 2u);
  ASSERT_EQ(out.results[0].size(), 2u);
  EXPECT_EQ(out.results[0][0].id, 5u);
  EXPECT_DOUBLE_EQ(out.results[0][0].score, 0.75);
  EXPECT_TRUE(out.results[1].empty());

  Response retry;
  retry.op = Op::kInsert;
  retry.seq = 3;
  retry.status = Status::kRetryAfter;
  retry.retry_after_ms = 25;
  ASSERT_TRUE(decode_response(encode_response(retry), &out, &error));
  EXPECT_EQ(out.status, Status::kRetryAfter);
  EXPECT_EQ(out.retry_after_ms, 25u);
}

TEST(ServerProtocolTest, DecodeRejectsMalformedBodies) {
  Request req;
  std::string error;
  // Truncated header.
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_FALSE(decode_request(tiny, &req, &error));
  // Unknown op.
  std::vector<std::uint8_t> unknown(9, 0);
  unknown[0] = 200;
  EXPECT_FALSE(decode_request(unknown, &req, &error));
  EXPECT_EQ(req.seq, 0u);  // seq still extracted for the error reply
  // Trailing garbage after a valid ping.
  auto ping = encode_ping(5);
  ping.push_back(0xff);
  EXPECT_FALSE(decode_request(ping, &req, &error));
  EXPECT_EQ(req.seq, 5u);
  // Hostile batch count.
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kEraseBatch));
  w.u64(1);
  w.u32(0xffffffff);
  EXPECT_FALSE(decode_request(w.take(), &req, &error));
}

TEST(ServerProtocolTest, FrameAssemblerReassemblesChunkedFrames) {
  const auto body1 = encode_ping(1);
  const auto body2 = encode_erase(2, 99);
  std::vector<std::uint8_t> stream = frame(body1);
  const auto f2 = frame(body2);
  stream.insert(stream.end(), f2.begin(), f2.end());

  FrameAssembler assembler;
  std::vector<std::uint8_t> out;
  // Feed one byte at a time; frames pop exactly at their boundaries.
  std::vector<std::vector<std::uint8_t>> got;
  for (const std::uint8_t b : stream) {
    assembler.feed({&b, 1});
    while (assembler.next(&out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], body1);
  EXPECT_EQ(got[1], body2);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(ServerProtocolTest, FrameAssemblerRejectsOversizedFrames) {
  FrameAssembler assembler;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &huge, 4);
  assembler.feed({prefix, 4});
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(assembler.next(&out));
  EXPECT_TRUE(assembler.error());
}

TEST(ServerProtocolTest, HelloCapsRoundTrip) {
  // Capability-bearing hello request.
  Request req;
  std::string error;
  ASSERT_TRUE(decode_request(encode_hello(4, 9, kCapServerTiming), &req,
                             &error))
      << error;
  EXPECT_EQ(req.op, Op::kHello);
  EXPECT_EQ(req.tenant, 9u);
  EXPECT_EQ(req.caps, kCapServerTiming);

  // A legacy 2-byte hello (no caps word) decodes with caps == 0 — the old
  // encoding is byte-identical and still accepted.
  ASSERT_TRUE(decode_request(encode_hello(4, 9), &req, &error)) << error;
  EXPECT_EQ(req.tenant, 9u);
  EXPECT_EQ(req.caps, 0u);

  // The kOk hello response echoes the accepted caps subset.
  Response in;
  in.op = Op::kHello;
  in.seq = 4;
  in.status = Status::kOk;
  in.caps = kCapServerTiming;
  Response out;
  ASSERT_TRUE(decode_response(encode_response(in), &out, &error)) << error;
  EXPECT_EQ(out.caps, kCapServerTiming);
  EXPECT_FALSE(out.has_timing);

  // caps == 0 encodes the legacy empty-payload hello ack.
  in.caps = 0;
  const auto legacy = encode_response(in);
  ASSERT_TRUE(decode_response(legacy, &out, &error)) << error;
  EXPECT_EQ(out.caps, 0u);
  // op(1) + seq(8) + status(1): no caps word, byte-identical to pre-caps.
  EXPECT_EQ(legacy.size(), 10u);
}

TEST(ServerProtocolTest, TimingTrailerRoundTrips) {
  Response in;
  in.op = Op::kQuery;
  in.seq = 21;
  in.status = Status::kOk;
  in.results = {{{5, 0.75}}};
  in.has_timing = true;
  in.queue_ns = 1234567;
  in.exec_ns = 89012345;

  Response out;
  std::string error;
  ASSERT_TRUE(decode_response(encode_response(in), &out, &error)) << error;
  EXPECT_TRUE(out.has_timing);
  EXPECT_EQ(out.queue_ns, 1234567u);
  EXPECT_EQ(out.exec_ns, 89012345u);
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_EQ(out.results[0][0].id, 5u);

  // The trailer rides on rejections too (admission-control visibility).
  Response retry;
  retry.op = Op::kInsert;
  retry.seq = 3;
  retry.status = Status::kRetryAfter;
  retry.retry_after_ms = 25;
  retry.has_timing = true;
  retry.queue_ns = 42;
  retry.exec_ns = 0;
  ASSERT_TRUE(decode_response(encode_response(retry), &out, &error)) << error;
  EXPECT_EQ(out.status, Status::kRetryAfter);
  EXPECT_EQ(out.retry_after_ms, 25u);
  EXPECT_TRUE(out.has_timing);
  EXPECT_EQ(out.queue_ns, 42u);

  // Without the flag the encoding is byte-identical to the legacy wire
  // format and decodes with has_timing == false.
  in.has_timing = false;
  ASSERT_TRUE(decode_response(encode_response(in), &out, &error)) << error;
  EXPECT_FALSE(out.has_timing);
  EXPECT_EQ(out.queue_ns, 0u);
}

// --- Engine facade parity --------------------------------------------------

/// Engine-routed writes must be bit-identical to direct index writes: same
/// ops through QueryEngine vs. straight on the index, then byte-compare
/// the persisted images.
TEST(EngineFacadeTest, FlatWritesBitIdenticalToDirect) {
  const core::FastConfig cfg = flat_config();
  const auto pca = test::fake_pca();
  core::FastIndex direct(cfg, pca);
  core::FastIndex routed_backend(cfg, pca);
  core::QueryEngine engine(routed_backend);
  ASSERT_TRUE(engine.writable());

  std::vector<core::EngineWrite> batch;
  for (std::uint64_t id = 1; id <= 40; ++id) {
    const auto sig = make_signature(id, cfg.bloom_bits);
    direct.insert_signature(id, sig);
    batch.push_back({id, sig});
  }
  engine.insert_batch(batch);
  for (std::uint64_t id = 5; id <= 15; ++id) direct.erase(id);
  std::vector<std::uint64_t> erase_ids;
  for (std::uint64_t id = 5; id <= 15; ++id) erase_ids.push_back(id);
  EXPECT_EQ(engine.erase_batch(erase_ids), erase_ids.size());
  ASSERT_EQ(engine.size(), direct.size());

  const std::string dir = fresh_dir("facade_flat");
  direct.save(dir + "/direct.fast");
  engine.index().save(dir + "/routed.fast");
  const auto a = read_file(dir + "/direct.fast");
  const auto b = read_file(dir + "/routed.fast");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(EngineFacadeTest, TieredWritesMatchDirect) {
  const core::FastConfig cfg = tiered_config();
  const auto pca = test::fake_pca();
  core::TieredIndex direct(cfg, pca);
  core::TieredIndex routed_backend(cfg, pca);
  core::QueryEngine engine(routed_backend);
  ASSERT_TRUE(engine.writable());

  for (std::uint64_t id = 1; id <= 60; ++id) {
    const auto sig = make_signature(id, cfg.bloom_bits);
    direct.insert_signature(id, sig);
    engine.insert_signature(id, sig);
  }
  for (std::uint64_t id = 10; id <= 20; ++id) {
    EXPECT_EQ(direct.erase(id), engine.erase(id)) << id;
  }
  ASSERT_EQ(engine.size(), direct.size());
  for (std::uint64_t id = 1; id <= 60; ++id) {
    const auto sig = make_signature(id, cfg.bloom_bits);
    const auto want = direct.query_signature(sig, 4);
    const auto got = engine.query_signature(sig, 4);
    ASSERT_EQ(want.hits.size(), got.hits.size()) << id;
    for (std::size_t h = 0; h < want.hits.size(); ++h) {
      EXPECT_EQ(want.hits[h].id, got.hits[h].id);
      EXPECT_DOUBLE_EQ(want.hits[h].score, got.hits[h].score);
    }
  }
}

TEST(EngineFacadeTest, OpenYieldsWritableDurableEngine) {
  core::FastConfig cfg = flat_config();
  core::DurabilityOptions opts;
  opts.dir = fresh_dir("facade_open");
  auto engine = core::QueryEngine::open(cfg, test::fake_pca(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  const std::unique_ptr<core::QueryEngine>& eng = engine.value();
  EXPECT_TRUE(eng->writable());
  EXPECT_TRUE(eng->durable());
  eng->insert_signature(1, make_signature(1, cfg.bloom_bits));
  EXPECT_TRUE(eng->sync_wal().ok());
  EXPECT_EQ(eng->size(), 1u);
}

// --- Loopback server -------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  /// Starts a server over a fresh writable engine; returns the port.
  void start(core::FastConfig cfg, ServerOptions options = {}) {
    cfg_ = cfg;
    pca_ = test::fake_pca();
    if (cfg.tier.enabled) {
      tiered_ = std::make_unique<core::TieredIndex>(cfg, pca_);
      engine_ = std::make_unique<core::QueryEngine>(*tiered_);
    } else {
      flat_ = std::make_unique<core::FastIndex>(cfg, pca_);
      engine_ = std::make_unique<core::QueryEngine>(*flat_);
    }
    options.port = 0;
    server_ = std::make_unique<Server>(*engine_, options);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
  }

  core::FastConfig cfg_;
  vision::PcaModel pca_;
  std::unique_ptr<core::FastIndex> flat_;
  std::unique_ptr<core::TieredIndex> tiered_;
  std::unique_ptr<core::QueryEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, StartPingStop) {
  start(flat_config());
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  const auto pong = client.ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().status, Status::kOk);
  server_->stop();
  EXPECT_FALSE(server_->running());
  server_->stop();  // idempotent
}

/// The paper's serving workload over the wire vs. the same ops applied to
/// an in-process ground-truth index: every query answer must match
/// exactly, and no acked write may be missing.
TEST_F(ServerTest, MixedWorkloadMatchesGroundTruth) {
  const core::FastConfig cfg = tiered_config();
  start(cfg);
  core::TieredIndex truth(cfg, pca_);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());

  util::Rng rng(2024);
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t key = 1 + rng.uniform_u64(80);
    const auto sig = make_signature(key, cfg.bloom_bits);
    const double dice = rng.next_double();
    if (dice < 0.5) {
      const auto got = client.query(sig, 5);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got.value().status, Status::kOk);
      const auto want = truth.query_signature(sig, 5).hits;
      ASSERT_EQ(got.value().results.size(), 1u);
      const auto& hits = got.value().results[0];
      ASSERT_EQ(hits.size(), want.size()) << "step " << step;
      for (std::size_t h = 0; h < want.size(); ++h) {
        EXPECT_EQ(hits[h].id, want[h].id) << "step " << step;
        EXPECT_DOUBLE_EQ(hits[h].score, want[h].score) << "step " << step;
      }
    } else if (dice < 0.85) {
      const auto acked = client.insert(key, sig);
      ASSERT_TRUE(acked.ok());
      ASSERT_EQ(acked.value().status, Status::kOk);
      truth.insert_signature(key, sig);
    } else {
      const auto acked = client.erase(key);
      ASSERT_TRUE(acked.ok());
      ASSERT_EQ(acked.value().status, Status::kOk);
      const bool erased_truth = truth.erase(key);
      EXPECT_EQ(acked.value().count, erased_truth ? 1u : 0u);
    }
  }
  EXPECT_EQ(engine_->size(), truth.size());
}

/// queue_depth=1 with a slow handler: the first request is admitted, the
/// pipelined rest bounce with kRetryAfter — overload sheds instead of
/// queueing without bound.
TEST_F(ServerTest, AdmissionControlRejectsPastWindow) {
  ServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  options.retry_after_ms = 7;
  options.debug_request_delay_us = 200000;
  start(flat_config(), options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  const int kPipelined = 4;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(client.send(encode_ping(100 + i)).ok());
  }
  int ok = 0, retries = 0;
  for (int i = 0; i < kPipelined; ++i) {
    Response response;
    ASSERT_TRUE(client.recv(&response).ok());
    if (response.status == Status::kOk) {
      ++ok;
      EXPECT_EQ(response.seq, 100u);  // only the first was admitted
    } else {
      ASSERT_EQ(response.status, Status::kRetryAfter);
      EXPECT_EQ(response.retry_after_ms, 7u);
      ++retries;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(retries, kPipelined - 1);
}

TEST_F(ServerTest, BadRequestsAnswerWithoutDroppingConnection) {
  start(flat_config());
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());

  // Unknown op: body parses far enough to echo the seq.
  util::ByteWriter w;
  w.u8(200);
  w.u64(31337);
  ASSERT_TRUE(client.send(w.take()).ok());
  Response response;
  ASSERT_TRUE(client.recv(&response).ok());
  EXPECT_EQ(response.status, Status::kBadRequest);
  EXPECT_EQ(response.seq, 31337u);

  // Geometry mismatch: a signature at the wrong bloom_bits is a bad
  // request, not a server crash.
  const auto wrong = make_signature(1, cfg_.bloom_bits * 2);
  const auto r = client.insert(1, wrong);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, Status::kBadRequest);

  // The connection survives both.
  const auto pong = client.ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().status, Status::kOk);
}

TEST_F(ServerTest, OversizedFrameDropsConnection) {
  start(flat_config());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint32_t hostile = 64u << 20;  // above kMaxFrameBytes
  ASSERT_EQ(::send(fd, &hostile, sizeof(hostile), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(hostile)));
  std::uint8_t byte = 0;
  // Server closes: recv returns 0 (EOF), never a response frame.
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST_F(ServerTest, MetricsScrapeOverTheWire) {
  start(flat_config());
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  ASSERT_EQ(client.ping().value().status, Status::kOk);
  const auto scrape = client.metrics();
  ASSERT_TRUE(scrape.ok());
  ASSERT_EQ(scrape.value().status, Status::kOk);
  const std::string& text = scrape.value().text;
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("server_requests"), std::string::npos);
  EXPECT_NE(text.find("server_request_wall_s"), std::string::npos);
}

/// Graceful shutdown loses zero acked writes: insert through the wire
/// against a group-committed WAL, stop the server, recover the directory
/// in a fresh engine, and expect every acked id back.
TEST_F(ServerTest, NoLostAckedWritesAcrossGracefulShutdown) {
  core::FastConfig cfg = flat_config();
  core::DurabilityOptions opts;
  opts.dir = fresh_dir("no_lost_writes");
  // Group commit: without the shutdown-path sync_wal, the last records
  // would sit unsynced in the WAL tail.
  opts.wal_sync_every = 16;
  auto opened = core::QueryEngine::open(cfg, test::fake_pca(), opts);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<core::QueryEngine> engine = std::move(opened).value();
  auto server = std::make_unique<Server>(*engine, ServerOptions{});
  ASSERT_TRUE(server->start().ok());

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server->port()).ok());
  const std::uint64_t kWrites = 50;
  for (std::uint64_t id = 1; id <= kWrites; ++id) {
    const auto acked = client.insert(id, make_signature(id, cfg.bloom_bits));
    ASSERT_TRUE(acked.ok());
    ASSERT_EQ(acked.value().status, Status::kOk) << id;
  }
  server->stop();
  server.reset();
  engine.reset();  // release the directory before recovering it

  core::RecoveryStats stats;
  auto recovered = core::QueryEngine::open(cfg, test::fake_pca(), opts,
                                           &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  const std::unique_ptr<core::QueryEngine>& rec = recovered.value();
  EXPECT_EQ(rec->size(), kWrites);
  for (std::uint64_t id = 1; id <= kWrites; ++id) {
    const auto sig = make_signature(id, cfg.bloom_bits);
    const auto hits = rec->query_signature(sig, 1).hits;
    ASSERT_FALSE(hits.empty()) << id;
    EXPECT_EQ(hits[0].id, id);
  }
}

/// Requests racing stop(): every pipelined request gets exactly one
/// response — kOk for admitted ones, kShuttingDown for late arrivals —
/// and the connection drains cleanly.
TEST_F(ServerTest, ShutdownAnswersInFlightRequests) {
  ServerOptions options;
  options.workers = 2;
  options.queue_depth = 64;
  options.debug_request_delay_us = 2000;
  start(tiered_config(), options);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).ok());
  const int kPipelined = 32;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(
        client
            .send(encode_insert(i + 1, i + 1,
                                make_signature(i + 1, cfg_.bloom_bits)))
            .ok());
  }
  std::thread stopper([this] { server_->stop(); });
  int ok = 0;
  for (int i = 0; i < kPipelined; ++i) {
    Response response;
    // Ends with either a response or EOF once the server finished
    // flushing — never a hang.
    if (!client.recv(&response).ok()) break;
    if (response.status == Status::kOk) ++ok;
  }
  stopper.join();
  // The shutdown contract: whatever the race between frames and stop(),
  // every kOk-acked insert is actually in the engine — acks are never
  // issued for dropped work.
  EXPECT_EQ(engine_->size(), static_cast<std::size_t>(ok));
  EXPECT_FALSE(server_->running());
}

/// Capability negotiation end to end: a connection that asks for
/// kCapServerTiming gets it echoed in the hello ack and a queue/exec
/// trailer on every subsequent worker-executed response; a connection
/// that never negotiates sees the legacy format, trailer-free.
TEST_F(ServerTest, NegotiatedServerTimingOverTheWire) {
  start(flat_config());

  Client timed;
  ASSERT_TRUE(timed.connect("127.0.0.1", server_->port()).ok());
  const auto ack = timed.hello(0, kCapServerTiming);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack.value().status, Status::kOk);
  EXPECT_EQ(ack.value().caps, kCapServerTiming);

  const auto sig = make_signature(1, cfg_.bloom_bits);
  ASSERT_EQ(timed.insert(1, sig).value().status, Status::kOk);
  const auto got = timed.query(sig, 3);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().status, Status::kOk);
  EXPECT_TRUE(got.value().has_timing);
  // exec covers the actual engine work: positive and sane (< 10 s).
  EXPECT_GT(got.value().exec_ns, 0u);
  EXPECT_LT(got.value().exec_ns, 10'000'000'000ull);
  EXPECT_LT(got.value().queue_ns, 10'000'000'000ull);

  // Unknown capability bits are masked off, not echoed.
  Client greedy;
  ASSERT_TRUE(greedy.connect("127.0.0.1", server_->port()).ok());
  const auto masked = greedy.hello(0, 0xfffffffe);
  ASSERT_TRUE(masked.ok());
  ASSERT_EQ(masked.value().status, Status::kOk);
  EXPECT_EQ(masked.value().caps, 0u);

  // A legacy connection (no hello at all) never sees a trailer.
  Client legacy;
  ASSERT_TRUE(legacy.connect("127.0.0.1", server_->port()).ok());
  const auto plain = legacy.query(sig, 3);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain.value().status, Status::kOk);
  EXPECT_FALSE(plain.value().has_timing);
}

}  // namespace
}  // namespace fast::server
