#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "core/query_engine.hpp"
#include "test_helpers.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "workload/query_gen.hpp"

namespace fast::core {
namespace {

class FastIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(40));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }

  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }

  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* FastIndexTest::dataset_ = nullptr;
vision::PcaModel* FastIndexTest::pca_ = nullptr;

TEST_F(FastIndexTest, SummarizeIsDeterministic) {
  FastIndex index(small_config(), *pca_);
  const auto s1 = index.summarize(dataset_->photos[0].image);
  const auto s2 = index.summarize(dataset_->photos[0].image);
  EXPECT_EQ(s1.set_bits(), s2.set_bits());
  EXPECT_GT(s1.popcount(), 0u);
}

TEST_F(FastIndexTest, DistinctImagesDistinctSignatures) {
  FastIndex index(small_config(), *pca_);
  const auto s1 = index.summarize(dataset_->photos[0].image);
  const auto s2 = index.summarize(dataset_->photos[1].image);
  EXPECT_LT(hash::SparseSignature::jaccard(s1, s2), 0.999);
}

TEST_F(FastIndexTest, InsertThenSignatureRetrievable) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[3].image);
  const InsertResult r = index.insert_signature(3, sig);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(index.size(), 1u);
  ASSERT_NE(index.signature_of(3), nullptr);
  EXPECT_EQ(index.signature_of(3)->set_bits(), sig.set_bits());
  EXPECT_EQ(index.signature_of(99), nullptr);
}

TEST_F(FastIndexTest, InsertedImageIsItsOwnTopHit) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 20; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
  }
  for (std::size_t i = 0; i < 20; ++i) index.insert_signature(i, sigs[i]);
  for (std::size_t i = 0; i < 20; ++i) {
    const QueryResult r = index.query_signature(sigs[i], 1);
    ASSERT_FALSE(r.hits.empty()) << "image " << i;
    // A perfect-score tie between identical signatures is legal; the top
    // hit must then carry a signature identical to the query's.
    EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
    const auto* top_sig = index.signature_of(r.hits.front().id);
    ASSERT_NE(top_sig, nullptr);
    EXPECT_EQ(top_sig->set_bits(), sigs[i].set_bits());
  }
}

TEST_F(FastIndexTest, QueryCostsAccounted) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[0].image);
  index.insert_signature(0, sig);
  const QueryResult r = index.query_signature(sig, 3);
  EXPECT_GT(r.bucket_probes, 0u);
  EXPECT_GT(r.cost.elapsed_s(), 0.0);
  EXPECT_FALSE(r.parallel_tasks.empty());
}

TEST_F(FastIndexTest, FullImageQueryChargesFeatureExtraction) {
  FastIndex index(small_config(), *pca_);
  index.insert(0, dataset_->photos[0].image);
  const QueryResult r = index.query(dataset_->photos[0].image, 1);
  EXPECT_GE(r.cost.elapsed_s(), index.config().feature_extract_s);
  ASSERT_FALSE(r.hits.empty());
  EXPECT_EQ(r.hits.front().id, 0u);
}

TEST_F(FastIndexTest, NearDuplicateRetrieved) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < dataset_->photos.size(); ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
  }
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    index.insert_signature(i, sigs[i]);
  }
  const auto queries = workload::make_dup_queries(*dataset_, 8);
  std::size_t found = 0;
  for (const auto& q : queries) {
    const QueryResult r = index.query(q.image, 5);
    for (const auto& h : r.hits) {
      if (h.id == q.source) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 6u);  // >= 75% of sources in top-5
}

TEST_F(FastIndexTest, CandidateNarrowing) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < dataset_->photos.size(); ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  const auto queries = workload::make_dup_queries(*dataset_, 8);
  double mean_candidates = 0;
  for (const auto& q : queries) {
    mean_candidates +=
        static_cast<double>(index.query(q.image, 5).candidates);
  }
  mean_candidates /= 8;
  // The whole point of SA + CHS: the candidate set is a fraction of the
  // corpus, not the corpus.
  EXPECT_LT(mean_candidates, 0.8 * static_cast<double>(index.size()));
}

TEST_F(FastIndexTest, GroupsAggregateAcrossTables) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[0].image);
  index.insert_signature(0, sig);
  // One group per table for the first insert.
  EXPECT_EQ(index.group_count(), index.config().minhash.bands);
}

TEST_F(FastIndexTest, CuckooGrowthKeepsAllKeys) {
  FastConfig cfg = small_config();
  cfg.cuckoo.capacity = 16;  // forces several growth cycles
  FastIndex index(cfg, *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 30; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  for (std::size_t i = 0; i < 30; ++i) {
    const QueryResult r = index.query_signature(sigs[i], 1);
    ASSERT_FALSE(r.hits.empty());
    EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
    const auto* top_sig = index.signature_of(r.hits.front().id);
    ASSERT_NE(top_sig, nullptr);
    EXPECT_EQ(top_sig->set_bits(), sigs[i].set_bits());
  }
}

TEST_F(FastIndexTest, PStableBackendAlsoRetrieves) {
  FastConfig cfg = small_config();
  cfg.sa_backend = FastConfig::SaBackend::kPStable;
  cfg.calibrate_target = 0.25;
  FastIndex index(cfg, *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 25; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
  }
  const auto queries = workload::make_dup_queries(*dataset_, 6, 0xca1);
  std::vector<hash::SparseSignature> qsigs;
  for (const auto& q : queries) qsigs.push_back(index.summarize(q.image));
  index.calibrate_scale(qsigs, sigs);
  EXPECT_NE(index.config().lsh_input_scale, 1.0);
  for (std::size_t i = 0; i < 25; ++i) index.insert_signature(i, sigs[i]);
  // Exact re-query must hit: identical vectors collide in every table.
  const QueryResult r = index.query_signature(sigs[7], 1);
  ASSERT_FALSE(r.hits.empty());
  EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
  const auto* top_sig = index.signature_of(r.hits.front().id);
  ASSERT_NE(top_sig, nullptr);
  EXPECT_EQ(top_sig->set_bits(), sigs[7].set_bits());
}

TEST_F(FastIndexTest, CalibrateScaleParallelMatchesSequential) {
  // The pooled O(queries * corpus) NN sweep must land on the exact same
  // input scale as the sequential path.
  FastConfig cfg = small_config();
  cfg.sa_backend = FastConfig::SaBackend::kPStable;
  FastIndex seq(cfg, *pca_);
  FastIndex par(cfg, *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 25; ++i) {
    sigs.push_back(seq.summarize(dataset_->photos[i].image));
  }
  const auto queries = workload::make_dup_queries(*dataset_, 6, 0xca1);
  std::vector<hash::SparseSignature> qsigs;
  for (const auto& q : queries) qsigs.push_back(seq.summarize(q.image));
  seq.calibrate_scale(qsigs, sigs);
  util::ThreadPool pool(4);
  par.calibrate_scale(qsigs, sigs, &pool);
  EXPECT_NE(seq.config().lsh_input_scale, 1.0);
  EXPECT_DOUBLE_EQ(par.config().lsh_input_scale,
                   seq.config().lsh_input_scale);
}

TEST_F(FastIndexTest, SaKeysWallHistogramTracksRealKernelTime) {
  // sa.keys_wall_s measures the native sparse-kernel latency — one sample
  // per key derivation (insert, query, erase) — while sa.insert_hash_ops
  // keeps charging the paper's dense flop model to the simulated platform.
  FastIndex index(small_config(), *pca_);
  const auto sig_a = index.summarize(dataset_->photos[0].image);
  const auto sig_b = index.summarize(dataset_->photos[1].image);
  index.insert_signature(0, sig_a);
  index.insert_signature(1, sig_b);
  index.query_signature(sig_a, 1);
  index.erase(1);
  const util::MetricsSnapshot snap = index.metrics().snapshot();
  EXPECT_EQ(snap.histograms.at("sa.keys_wall_s").count, 4u);
  EXPECT_GE(snap.histograms.at("sa.keys_wall_s").sum, 0.0);
  EXPECT_GT(snap.counters.at("sa.insert_hash_ops"), 0u);
}

TEST_F(FastIndexTest, IndexBytesGrowWithCorpus) {
  FastIndex index(small_config(), *pca_);
  const std::size_t empty_bytes = index.index_bytes();
  for (std::size_t i = 0; i < 10; ++i) {
    index.insert_signature(i, index.summarize(dataset_->photos[i].image));
  }
  EXPECT_GT(index.index_bytes(), empty_bytes);
}

TEST_F(FastIndexTest, SignatureStorageIsCompact) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[0].image);
  // The sparse signature must be a small fraction of the dense bit-vector,
  // and orders of magnitude below raw feature storage (~65 KB for SIFT).
  EXPECT_LT(sig.storage_bytes(), index.config().bloom_bits / 8 * 4);
  EXPECT_LT(sig.storage_bytes(), 16 * 1024u);
}

TEST_F(FastIndexTest, EmptyImageYieldsEmptySignatureAndNoCrash) {
  FastIndex index(small_config(), *pca_);
  img::Image flat(64, 64, 0.5f);
  const auto sig = index.summarize(flat);
  EXPECT_EQ(sig.popcount(), 0u);
  index.insert_signature(77, sig);
  const QueryResult r = index.query_signature(sig, 3);
  // The empty signature matches itself deterministically.
  ASSERT_FALSE(r.hits.empty());
  EXPECT_EQ(r.hits.front().id, 77u);
}

// ---------- erase ----------

TEST_F(FastIndexTest, EraseRemovesFromQueryResults) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 12; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  ASSERT_TRUE(index.erase(5));
  EXPECT_EQ(index.size(), 11u);
  EXPECT_EQ(index.signature_of(5), nullptr);
  const QueryResult r = index.query_signature(sigs[5], 12);
  for (const auto& hit : r.hits) EXPECT_NE(hit.id, 5u);
  // Unknown ids (and double-erase) are rejected.
  EXPECT_FALSE(index.erase(5));
  EXPECT_FALSE(index.erase(999));
}

TEST_F(FastIndexTest, EraseThenReinsertSameIdRoundtrips) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 10; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  ASSERT_TRUE(index.erase(4));
  index.insert_signature(4, sigs[4]);
  EXPECT_EQ(index.size(), 10u);
  const QueryResult r = index.query_signature(sigs[4], 1);
  ASSERT_FALSE(r.hits.empty());
  EXPECT_DOUBLE_EQ(r.hits.front().score, 1.0);
  const auto* top_sig = index.signature_of(r.hits.front().id);
  ASSERT_NE(top_sig, nullptr);
  EXPECT_EQ(top_sig->set_bits(), sigs[4].set_bits());
}

// Regression: re-inserting a live id used to append it to its groups'
// membership lists again (duplicate candidates) while keeping the stale
// signature. Re-insert is erase-then-insert: the id appears at most once
// per group and queries rank against the fresh signature.
TEST_F(FastIndexTest, ReinsertWithoutEraseReplacesSignature) {
  FastIndex index(small_config(), *pca_);
  const auto old_sig = index.summarize(dataset_->photos[0].image);
  const auto new_sig = index.summarize(dataset_->photos[1].image);
  index.insert_signature(7, old_sig);
  index.insert_signature(7, new_sig);  // no erase in between

  EXPECT_EQ(index.size(), 1u);
  const auto* stored = index.signature_of(7);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->set_bits(), new_sig.set_bits());

  // Queries score against the fresh signature: its own query is an exact
  // match, the stale signature's no longer is.
  const QueryResult fresh = index.query_signature(new_sig, 1);
  ASSERT_FALSE(fresh.hits.empty());
  EXPECT_EQ(fresh.hits.front().id, 7u);
  EXPECT_DOUBLE_EQ(fresh.hits.front().score, 1.0);
  const QueryResult stale = index.query_signature(old_sig, 1);
  if (!stale.hits.empty()) {
    EXPECT_LT(stale.hits.front().score, 1.0);
  }
}

TEST_F(FastIndexTest, ReinsertDoesNotDuplicateGroupMembership) {
  FastIndex index(small_config(), *pca_);
  const auto sig = index.summarize(dataset_->photos[2].image);
  index.insert_signature(3, sig);
  index.insert_signature(3, sig);
  index.insert_signature(3, sig);

  EXPECT_EQ(index.size(), 1u);
  for (std::size_t g = 0; g < index.group_count(); ++g) {
    std::size_t appearances = 0;
    for (std::uint64_t member : index.group_members(g)) {
      if (member == 3) ++appearances;
    }
    EXPECT_LE(appearances, 1u) << "group " << g;
  }
  // The id must still be retrievable and erasable exactly once.
  const QueryResult r = index.query_signature(sig, 1);
  ASSERT_FALSE(r.hits.empty());
  EXPECT_EQ(r.hits.front().id, 3u);
  EXPECT_TRUE(index.erase(3));
  EXPECT_FALSE(index.erase(3));
  EXPECT_EQ(index.size(), 0u);
}

TEST_F(FastIndexTest, SaveLoadAfterErasePreservesStateAndAnswers) {
  const std::string path = "/tmp/fast_index_erase_roundtrip.bin";
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 12; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  ASSERT_TRUE(index.erase(2));
  ASSERT_TRUE(index.erase(7));
  index.save(path);

  FastIndex loaded = FastIndex::load(path, small_config(), *pca_);
  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(loaded.signature_of(2), nullptr);
  EXPECT_EQ(loaded.signature_of(7), nullptr);
  for (std::size_t i = 0; i < 12; ++i) {
    const QueryResult before = index.query_signature(sigs[i], 3);
    const QueryResult after = loaded.query_signature(sigs[i], 3);
    ASSERT_EQ(before.hits.size(), after.hits.size()) << "query " << i;
    for (std::size_t h = 0; h < before.hits.size(); ++h) {
      EXPECT_EQ(before.hits[h].id, after.hits[h].id);
      EXPECT_DOUBLE_EQ(before.hits[h].score, after.hits[h].score);
    }
  }
  std::remove(path.c_str());
}

// ---------- QueryEngine ----------

TEST_F(FastIndexTest, BatchReportShapes) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 15; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  QueryEngine engine(index, 2);
  BatchOptions opts;
  opts.top_k = 3;
  const BatchReport report = engine.run_batch(sigs, opts);
  ASSERT_EQ(report.results.size(), sigs.size());
  EXPECT_GT(report.sim_mean_latency_s, 0.0);
  EXPECT_GE(report.sim_makespan_s, report.sim_mean_latency_s * 0.99);
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    ASSERT_FALSE(report.results[i].hits.empty());
    EXPECT_DOUBLE_EQ(report.results[i].hits.front().score, 1.0);
  }
}

TEST_F(FastIndexTest, FewSlotsQueueLatency) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 10; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  QueryEngine engine(index, 2);
  BatchOptions one_slot;
  one_slot.sim_slots = 1;
  BatchOptions many_slots;
  many_slots.sim_slots = 64;
  const double queued = engine.run_batch(sigs, one_slot).sim_mean_latency_s;
  const double parallel =
      engine.run_batch(sigs, many_slots).sim_mean_latency_s;
  EXPECT_GT(queued, parallel);
}

TEST_F(FastIndexTest, MulticoreLatencyDecreasesWithCores) {
  FastIndex index(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 20; ++i) {
    sigs.push_back(index.summarize(dataset_->photos[i].image));
    index.insert_signature(i, sigs.back());
  }
  const QueryResult r = index.query(dataset_->photos[0].image, 5);
  double prev = QueryEngine::simulated_query_latency(r, 1);
  for (std::size_t cores : {2, 4, 8, 16, 32}) {
    const double lat = QueryEngine::simulated_query_latency(r, cores);
    EXPECT_LE(lat, prev + 1e-12) << cores << " cores";
    prev = lat;
  }
  // Near-linear at small core counts: 4 cores at least 2.5x faster than 1.
  EXPECT_GT(QueryEngine::simulated_query_latency(r, 1) /
                QueryEngine::simulated_query_latency(r, 4),
            2.5);
}

}  // namespace
}  // namespace fast::core
