// Refactor parity: the stage-composed pipeline must return bit-identical
// query results (ids + scores) to the pre-refactor monolithic FastIndex.
// The golden values below were captured from the monolith (commit 7b05e94,
// before src/core/pipeline/ existed) on the deterministic corpus
// test::small_dataset(40) / test::fake_pca(), for both SA backends. Any
// change to stage wiring that perturbs keys, probe order, group assignment
// or ranking shows up here as a hard mismatch.
//
// The chained-CHS cross-check additionally pins down that the group store
// is a pure key->group mapping: both storage backends must assign the same
// group ids in the same order and therefore return identical hits.
#include <vector>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "test_helpers.hpp"
#include "workload/query_gen.hpp"

namespace fast::core {
namespace {

struct GoldenHit {
  std::uint64_t id;
  double score;
};
using GoldenQuery = std::vector<GoldenHit>;

// Captured from the pre-refactor monolith: 25 corpus signatures inserted,
// 6 dup queries (seed 0xca1), top-5 per query.
const std::vector<GoldenQuery> kGoldenMinHash = {
    {{6ULL, 0.17551234892275355},
     {11ULL, 0.060296846011131729},
     {14ULL, 0.059207225288509781}},
    {{9ULL, 0.076576576576576572}, {22ULL, 0.068273092369477914}},
    {{24ULL, 0.2157456472369417}},
    {{22ULL, 0.08340611353711791},
     {18ULL, 0.06133333333333333},
     {11ULL, 0.05201266395296246}},
    {{2ULL, 0.19798917246713071}},
    {{0ULL, 0.082089552238805971},
     {5ULL, 0.081570996978851965},
     {15ULL, 0.06407035175879397},
     {2ULL, 0.052872062663185379}},
};

const std::vector<GoldenQuery> kGoldenPStable = {
    {{6ULL, 0.17551234892275355},
     {5ULL, 0.081974438078448661},
     {16ULL, 0.077613279497532522},
     {8ULL, 0.069675723049956173},
     {17ULL, 0.064872657376261411}},
    {{11ULL, 0.11615154536390827},
     {8ULL, 0.084730403262347084},
     {23ULL, 0.08232711306256861},
     {6ULL, 0.081481481481481488},
     {9ULL, 0.076576576576576572}},
    {{24ULL, 0.2157456472369417},
     {1ULL, 0.12306701030927836},
     {16ULL, 0.086533538146441366},
     {22ULL, 0.083751253761283853},
     {12ULL, 0.080600333518621461}},
    {{22ULL, 0.08340611353711791},
     {2ULL, 0.079295154185022032},
     {16ULL, 0.077194530216144683},
     {10ULL, 0.071428571428571425},
     {7ULL, 0.069492360768851652}},
    {{2ULL, 0.19798917246713071},
     {11ULL, 0.088068181818181823},
     {4ULL, 0.076869322152341019},
     {9ULL, 0.064665127020785224},
     {16ULL, 0.064465408805031446}},
    {{3ULL, 0.1059322033898305},
     {7ULL, 0.08835820895522388},
     {8ULL, 0.087111563932755987},
     {20ULL, 0.083550913838120106},
     {0ULL, 0.082089552238805971}},
};

class GoldenPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(40));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }

  /// Mirrors the capture harness exactly: 25 inserts, 6 queries, top-5.
  static std::vector<QueryResult> run_queries(FastConfig cfg,
                                              bool calibrate) {
    FastIndex index(cfg, *pca_);
    std::vector<hash::SparseSignature> sigs;
    for (std::size_t i = 0; i < 25; ++i) {
      sigs.push_back(index.summarize(dataset_->photos[i].image));
    }
    const auto queries = workload::make_dup_queries(*dataset_, 6, 0xca1);
    std::vector<hash::SparseSignature> qsigs;
    for (const auto& q : queries) qsigs.push_back(index.summarize(q.image));
    if (calibrate) index.calibrate_scale(qsigs, sigs);
    for (std::size_t i = 0; i < 25; ++i) index.insert_signature(i, sigs[i]);
    std::vector<QueryResult> results;
    for (const auto& qs : qsigs) {
      results.push_back(index.query_signature(qs, 5));
    }
    return results;
  }

  static void expect_matches_golden(const std::vector<QueryResult>& results,
                                    const std::vector<GoldenQuery>& golden) {
    ASSERT_EQ(results.size(), golden.size());
    for (std::size_t q = 0; q < golden.size(); ++q) {
      ASSERT_EQ(results[q].hits.size(), golden[q].size()) << "query " << q;
      for (std::size_t h = 0; h < golden[q].size(); ++h) {
        EXPECT_EQ(results[q].hits[h].id, golden[q][h].id)
            << "query " << q << " hit " << h;
        EXPECT_DOUBLE_EQ(results[q].hits[h].score, golden[q][h].score)
            << "query " << q << " hit " << h;
      }
    }
  }

  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }

  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* GoldenPipelineTest::dataset_ = nullptr;
vision::PcaModel* GoldenPipelineTest::pca_ = nullptr;

TEST_F(GoldenPipelineTest, MinHashBackendMatchesPreRefactorGolden) {
  FastConfig cfg = small_config();
  cfg.sa_backend = FastConfig::SaBackend::kMinHash;
  expect_matches_golden(run_queries(cfg, false), kGoldenMinHash);
}

TEST_F(GoldenPipelineTest, PStableBackendMatchesPreRefactorGolden) {
  FastConfig cfg = small_config();
  cfg.sa_backend = FastConfig::SaBackend::kPStable;
  expect_matches_golden(run_queries(cfg, true), kGoldenPStable);
}

TEST_F(GoldenPipelineTest, ChainedStoreReturnsIdenticalHits) {
  // The CHS stage only decides *where* key->group lives; swapping flat
  // cuckoo addressing for the chained baseline must not change any answer.
  FastConfig cfg = small_config();
  cfg.chs_backend = FastConfig::ChsBackend::kChained;
  expect_matches_golden(run_queries(cfg, false), kGoldenMinHash);

  cfg.sa_backend = FastConfig::SaBackend::kPStable;
  expect_matches_golden(run_queries(cfg, true), kGoldenPStable);
}

}  // namespace
}  // namespace fast::core
