// Cross-module integration tests: the full FE -> SM -> SA -> CHS pipeline
// with a real (trained) PCA eigenspace, baselines running on the same data,
// and the missing-child use case end to end.
#include <gtest/gtest.h>

#include "baseline/pca_sift_baseline.hpp"
#include "baseline/rnpe.hpp"
#include "baseline/sift_baseline.hpp"
#include "core/fast_index.hpp"
#include "core/query_engine.hpp"
#include "test_helpers.hpp"
#include "vision/pca_sift.hpp"
#include "workload/query_gen.hpp"

namespace fast {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::DatasetSpec spec = workload::DatasetSpec::wuhan(60);
    spec.image_size = 96;
    spec.child_presence_prob = 0.15;
    dataset_ = new workload::Dataset(workload::SceneGenerator(spec).generate());
    // Real (trained) eigenspace — the expensive, shared fixture.
    std::vector<img::Image> sample;
    for (std::size_t i = 0; i < 12; ++i) {
      sample.push_back(dataset_->photos[i].image);
    }
    vision::PcaSiftConfig pcfg;
    pcfg.patch_size = 13;  // smaller eigenproblem for test speed
    pca_ = new vision::PcaModel(vision::train_pca_sift(sample, pcfg, 600));
    pca_cfg_ = new vision::PcaSiftConfig(pcfg);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    delete pca_cfg_;
    dataset_ = nullptr;
    pca_ = nullptr;
    pca_cfg_ = nullptr;
  }

  static core::FastConfig fast_config() {
    core::FastConfig cfg;
    cfg.pca_sift = *pca_cfg_;
    cfg.cuckoo.capacity = 512;
    return cfg;
  }

  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
  static vision::PcaSiftConfig* pca_cfg_;
};

workload::Dataset* IntegrationTest::dataset_ = nullptr;
vision::PcaModel* IntegrationTest::pca_ = nullptr;
vision::PcaSiftConfig* IntegrationTest::pca_cfg_ = nullptr;

TEST_F(IntegrationTest, TrainedPcaProducesExpectedDims) {
  EXPECT_EQ(pca_->output_dim(), 36u);
  EXPECT_EQ(pca_->input_dim(), 2u * 13 * 13);
}

TEST_F(IntegrationTest, FullPipelineNearDupRetrieval) {
  core::FastIndex index(fast_config(), *pca_);
  for (const auto& photo : dataset_->photos) {
    const auto r = index.insert(photo.id, photo.image);
    EXPECT_TRUE(r.ok);
  }
  EXPECT_EQ(index.size(), dataset_->photos.size());

  const auto queries = workload::make_dup_queries(*dataset_, 10);
  std::size_t found = 0;
  double candidate_fraction = 0;
  for (const auto& q : queries) {
    const core::QueryResult r = index.query(q.image, 5);
    candidate_fraction += static_cast<double>(r.candidates) /
                          static_cast<double>(index.size());
    for (const auto& h : r.hits) {
      if (h.id == q.source) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 8u);  // >= 80% of sources in top-5
  EXPECT_LT(candidate_fraction / 10, 0.85);
}

TEST_F(IntegrationTest, FastAccuracyWithinTolerancesOfSift) {
  // Table III shape: SIFT (exact) is the reference; FAST loses only a
  // little accuracy. Accuracy = fraction of queries whose top hit is the
  // query's source photo.
  baseline::SiftBaselineConfig scfg;
  scfg.max_keypoints = 64;
  baseline::SiftBaseline sift(scfg, sim::CostModel{});
  core::FastIndex index(fast_config(), *pca_);
  for (const auto& photo : dataset_->photos) {
    sift.insert(photo.id, photo.image);
    index.insert(photo.id, photo.image);
  }
  const auto queries = workload::make_dup_queries(*dataset_, 10, 0x77);
  std::size_t sift_correct = 0, fast_correct = 0;
  for (const auto& q : queries) {
    const auto sift_out = sift.query(q.image, 3);
    for (const auto& h : sift_out.hits) {
      if (h.id == q.source) {
        ++sift_correct;
        break;
      }
    }
    const auto fast_out = index.query(q.image, 3);
    for (const auto& h : fast_out.hits) {
      if (h.id == q.source) {
        ++fast_correct;
        break;
      }
    }
  }
  EXPECT_GE(sift_correct, 6u);
  // FAST within 2 queries of SIFT on this sample (Table III's "acceptably
  // small loss of accuracy").
  EXPECT_GE(fast_correct + 2, sift_correct);
}

TEST_F(IntegrationTest, LatencyOrderingMatchesPaper) {
  // Fig. 4 shape: simulated per-query cost FAST << RNPE << PCA-SIFT < SIFT.
  baseline::SiftBaselineConfig scfg;
  scfg.max_keypoints = 48;
  scfg.cache_pages = 8;
  baseline::SiftBaseline sift(scfg, sim::CostModel{});
  baseline::PcaSiftBaselineConfig pcfg;
  pcfg.max_keypoints = 48;
  pcfg.cache_pages = 8;
  pcfg.pca_sift = *pca_cfg_;
  baseline::PcaSiftBaseline pca_sift(pcfg, sim::CostModel{}, *pca_);
  baseline::RnpeConfig rcfg;
  baseline::Rnpe rnpe(rcfg, sim::CostModel{});
  core::FastIndex index(fast_config(), *pca_);

  for (const auto& photo : dataset_->photos) {
    sift.insert(photo.id, photo.image);
    pca_sift.insert(photo.id, photo.image);
    rnpe.insert(photo.id, photo.geo_x, photo.geo_y, photo.landmark,
                photo.view);
    index.insert(photo.id, photo.image);
  }

  const auto& probe = dataset_->photos[5];
  const double sift_s = sift.query(probe.image, 5).cost.elapsed_s();
  const double pca_s = pca_sift.query(probe.image, 5).cost.elapsed_s();
  const double rnpe_s =
      rnpe.query(probe.geo_x, probe.geo_y, probe.landmark, probe.view, 5)
          .cost.elapsed_s();
  const double fast_s = index.query(probe.image, 5).cost.elapsed_s();

  EXPECT_LT(fast_s, rnpe_s);
  EXPECT_LT(rnpe_s, pca_s);
  EXPECT_LE(pca_s, sift_s);
}

TEST_F(IntegrationTest, SpaceOrderingMatchesPaper) {
  // Table IV shape: SIFT > PCA-SIFT > RNPE > FAST.
  baseline::SiftBaselineConfig scfg;
  scfg.max_keypoints = 64;
  baseline::SiftBaseline sift(scfg, sim::CostModel{});
  baseline::PcaSiftBaselineConfig pcfg;
  pcfg.max_keypoints = 64;
  pcfg.pca_sift = *pca_cfg_;
  baseline::PcaSiftBaseline pca_sift(pcfg, sim::CostModel{}, *pca_);
  baseline::RnpeConfig rcfg;
  baseline::Rnpe rnpe(rcfg, sim::CostModel{});
  core::FastIndex index(fast_config(), *pca_);

  for (const auto& photo : dataset_->photos) {
    sift.insert(photo.id, photo.image);
    pca_sift.insert(photo.id, photo.image);
    rnpe.insert(photo.id, photo.geo_x, photo.geo_y, photo.landmark,
                photo.view);
    index.insert(photo.id, photo.image);
  }
  EXPECT_GT(sift.index_bytes(), pca_sift.index_bytes());
  EXPECT_GT(pca_sift.index_bytes(), rnpe.index_bytes());
  EXPECT_GT(rnpe.index_bytes(), index.index_bytes());
}

TEST_F(IntegrationTest, MissingChildFoundViaPortrait) {
  core::FastIndex index(fast_config(), *pca_);
  for (const auto& photo : dataset_->photos) {
    index.insert(photo.id, photo.image);
  }
  const workload::QuerySet qs = workload::make_child_queries(*dataset_, 3);
  ASSERT_FALSE(qs.relevant.empty());
  // At least one portrait query surfaces at least one child-containing
  // photo among its top-10 results.
  std::size_t hits = 0;
  for (const auto& portrait : qs.portraits) {
    const core::QueryResult r = index.query(portrait, 10);
    for (const auto& h : r.hits) {
      for (std::uint64_t rel : qs.relevant) {
        if (h.id == rel) {
          ++hits;
          break;
        }
      }
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST_F(IntegrationTest, InsertLatencyFlatVersusBaselineGrowth) {
  // Fig. 5 shape: FAST's per-insert cost stays flat while SIFT's grows
  // with corpus size (its ingest compares against everything stored).
  baseline::SiftBaselineConfig scfg;
  scfg.max_keypoints = 32;
  scfg.cache_pages = 8;
  // Isolate the corpus-dependent ingest-comparison growth from the fixed
  // per-record SQL index-maintenance constant.
  scfg.index_update_pages = 0;
  baseline::SiftBaseline sift(scfg, sim::CostModel{});
  core::FastIndex index(fast_config(), *pca_);

  double sift_first = 0, sift_last = 0, fast_first = 0, fast_last = 0;
  const std::size_t n = dataset_->photos.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& photo = dataset_->photos[i];
    const double s = sift.insert(photo.id, photo.image).cost.elapsed_s();
    const double f = index.insert(photo.id, photo.image).cost.elapsed_s();
    if (i < 5) {
      sift_first += s;
      fast_first += f;
    }
    if (i >= n - 5) {
      sift_last += s;
      fast_last += f;
    }
  }
  EXPECT_GT(sift_last, sift_first * 1.5);   // grows
  EXPECT_LT(fast_last, fast_first * 1.5);   // flat
}

TEST_F(IntegrationTest, ParallelBatchMatchesSerialResults) {
  core::FastIndex index(fast_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (const auto& photo : dataset_->photos) {
    sigs.push_back(index.summarize(photo.image));
    index.insert_signature(photo.id, sigs.back());
  }
  core::QueryEngine engine(index, 4);
  core::BatchOptions opts;
  opts.top_k = 3;
  const core::BatchReport report = engine.run_batch(sigs, opts);
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    const core::QueryResult serial = index.query_signature(sigs[i], 3);
    ASSERT_EQ(report.results[i].hits.size(), serial.hits.size());
    for (std::size_t h = 0; h < serial.hits.size(); ++h) {
      EXPECT_EQ(report.results[i].hits[h].id, serial.hits[h].id);
    }
  }
}

}  // namespace
}  // namespace fast
