// Tiered index tests: the LSM-style assembly (memtable lanes + sealed
// segments + compaction) must be indistinguishable from a flat FastIndex
// holding the same live set — same hits, same scores — across seals,
// erases, re-inserts and compaction, while the tier-specific machinery
// (blooms, tombstone GC, background merges) does its job underneath.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_index.hpp"
#include "core/query_engine.hpp"
#include "core/sharded_index.hpp"
#include "core/tiered_index.hpp"
#include "test_helpers.hpp"

namespace fast::core {
namespace {

class TierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(40));
    pca_ = new vision::PcaModel(test::fake_pca());
    FastIndex helper(flat_config(), *pca_);
    sigs_ = new std::vector<hash::SparseSignature>();
    for (const auto& photo : dataset_->photos) {
      sigs_->push_back(helper.summarize(photo.image));
    }
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    delete sigs_;
    dataset_ = nullptr;
    pca_ = nullptr;
    sigs_ = nullptr;
  }

  static FastConfig flat_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }
  /// Tiny thresholds so a 40-image dataset exercises every tier
  /// transition; background off so seals and merges run inline and the
  /// tests are deterministic.
  static FastConfig tiered_config() {
    FastConfig cfg = flat_config();
    cfg.tier.enabled = true;
    cfg.tier.seal_threshold = 8;
    cfg.tier.lanes = 2;
    cfg.tier.compact_fanin = 2;
    cfg.tier.compact_trigger = 2;
    cfg.tier.background = false;
    return cfg;
  }

  static void expect_same_hits(const QueryResult& a, const QueryResult& b) {
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id) << "hit " << h;
      EXPECT_DOUBLE_EQ(a.hits[h].score, b.hits[h].score) << "hit " << h;
    }
  }

  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
  static std::vector<hash::SparseSignature>* sigs_;
};

workload::Dataset* TierTest::dataset_ = nullptr;
vision::PcaModel* TierTest::pca_ = nullptr;
std::vector<hash::SparseSignature>* TierTest::sigs_ = nullptr;

TEST_F(TierTest, SealsAtThresholdAndQueriesSpanLayers) {
  TieredIndex index(tiered_config(), *pca_);
  for (std::size_t i = 0; i < 24; ++i) {
    index.insert_signature(i, (*sigs_)[i]);
  }
  EXPECT_EQ(index.size(), 24u);
  // 24 mentions over 2 lanes at threshold 8 must have sealed something.
  EXPECT_GE(index.segment_count(), 1u);
  // Every id is still retrievable, wherever its layer ended up.
  for (std::size_t i = 0; i < 24; ++i) {
    const QueryResult res = index.query_signature((*sigs_)[i], 1);
    ASSERT_FALSE(res.hits.empty()) << i;
    EXPECT_EQ(res.hits.front().id, i);
    EXPECT_DOUBLE_EQ(res.hits.front().score, 1.0);
  }
}

TEST_F(TierTest, MatchesFlatIndexExactly) {
  TieredIndex tiered(tiered_config(), *pca_);
  FastIndex flat(flat_config(), *pca_);
  // Insert, erase a slice, re-insert part of it: the live sets stay equal
  // while the tiered side accumulates tombstones and sealed segments.
  for (std::size_t i = 0; i < 32; ++i) {
    tiered.insert_signature(i, (*sigs_)[i]);
    flat.insert_signature(i, (*sigs_)[i]);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(tiered.erase(i));
    EXPECT_TRUE(flat.erase(i));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    tiered.insert_signature(i, (*sigs_)[i]);
    flat.insert_signature(i, (*sigs_)[i]);
  }
  ASSERT_EQ(tiered.size(), flat.size());

  // Probe with every dataset signature (present and absent alike) and a
  // deep k: hit lists and scores must agree exactly.
  for (std::size_t q = 0; q < sigs_->size(); ++q) {
    const QueryResult a = tiered.query_signature((*sigs_)[q], 10);
    const QueryResult b = flat.query_signature((*sigs_)[q], 10);
    expect_same_hits(a, b);
  }
}

TEST_F(TierTest, EraseAcrossSealLeavesTombstone) {
  TieredIndex index(tiered_config(), *pca_);
  for (std::size_t i = 0; i < 8; ++i) {
    index.insert_signature(i, (*sigs_)[i]);
  }
  index.seal_active();
  ASSERT_GE(index.segment_count(), 1u);

  // The victim now lives in a sealed (immutable) segment; erasing it must
  // go through a tombstone, not an in-place delete.
  EXPECT_TRUE(index.erase(3));
  EXPECT_FALSE(index.erase(3));  // already gone
  EXPECT_EQ(index.size(), 7u);
  EXPECT_GE(index.tombstone_count(), 1u);
  EXPECT_FALSE(index.find_signature(3).has_value());
  const QueryResult res = index.query_signature((*sigs_)[3], 8);
  for (const auto& hit : res.hits) {
    EXPECT_NE(hit.id, 3u);
  }
}

TEST_F(TierTest, ReinsertShadowsSealedVersion) {
  TieredIndex index(tiered_config(), *pca_);
  index.insert_signature(7, (*sigs_)[7]);
  index.seal_active();
  // Same id, new content, no intervening erase: the memtable version must
  // shadow the sealed one.
  index.insert_signature(7, (*sigs_)[8]);
  EXPECT_EQ(index.size(), 1u);
  const QueryResult fresh = index.query_signature((*sigs_)[8], 1);
  ASSERT_FALSE(fresh.hits.empty());
  EXPECT_EQ(fresh.hits.front().id, 7u);
  EXPECT_DOUBLE_EQ(fresh.hits.front().score, 1.0);
  // The old signature no longer scores 1.0 anywhere.
  const QueryResult stale = index.query_signature((*sigs_)[7], 1);
  if (!stale.hits.empty()) {
    EXPECT_LT(stale.hits.front().score, 1.0);
  }
}

TEST_F(TierTest, CompactionPreservesContentAndDropsTombstones) {
  TieredIndex tiered(tiered_config(), *pca_);
  FastIndex flat(flat_config(), *pca_);
  for (std::size_t i = 0; i < 32; ++i) {
    tiered.insert_signature(i, (*sigs_)[i]);
    flat.insert_signature(i, (*sigs_)[i]);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    tiered.erase(i);
    flat.erase(i);
  }
  // Freeze the tombstones into segments, then merge until nothing is
  // eligible: bottom-level merges must GC them.
  tiered.seal_active();
  while (tiered.compact_once()) {
  }
  const auto metrics = tiered.metrics().snapshot();
  EXPECT_GE(metrics.counters.at("compaction.runs"), 1u);
  EXPECT_GE(metrics.counters.at("compaction.dropped_tombstones"), 1u);
  EXPECT_GE(metrics.counters.at("tier.seals"), 1u);

  ASSERT_EQ(tiered.size(), flat.size());
  for (std::size_t q = 0; q < sigs_->size(); ++q) {
    const QueryResult a = tiered.query_signature((*sigs_)[q], 10);
    const QueryResult b = flat.query_signature((*sigs_)[q], 10);
    expect_same_hits(a, b);
  }
}

TEST_F(TierTest, EraseBatchMatchesLoop) {
  TieredIndex index(tiered_config(), *pca_);
  for (std::size_t i = 0; i < 20; ++i) {
    index.insert_signature(i, (*sigs_)[i]);
  }
  const std::vector<std::uint64_t> victims = {1, 3, 5, 99, 3};
  // 99 is unknown and 3 repeats: only three distinct live ids go away.
  EXPECT_EQ(index.erase_batch(victims), 3u);
  EXPECT_EQ(index.size(), 17u);
  EXPECT_FALSE(index.find_signature(3).has_value());
  EXPECT_TRUE(index.find_signature(2).has_value());
}

TEST_F(TierTest, BloomSkipsColdSegments) {
  FastConfig cfg = tiered_config();
  cfg.tier.compact_trigger = 64;  // keep many small segments around
  TieredIndex index(cfg, *pca_);
  for (std::size_t i = 0; i < sigs_->size(); ++i) {
    index.insert_signature(i, (*sigs_)[i]);
  }
  index.seal_active();
  index.compact_once();  // finalizes blooms even when nothing merges
  ASSERT_GE(index.segment_count(), 3u);

  for (std::size_t q = 0; q < sigs_->size(); ++q) {
    const QueryResult res = index.query_signature((*sigs_)[q], 1);
    ASSERT_FALSE(res.hits.empty());
    EXPECT_EQ(res.hits.front().id, q);
  }
  // Each probe's keys live in one segment; the blooms must have pruned
  // most of the others.
  const auto metrics = index.metrics().snapshot();
  EXPECT_GT(metrics.counters.at("tier.segment_skips"), 0u);
}

TEST_F(TierTest, ExpositionCarriesTierMetrics) {
  TieredIndex index(tiered_config(), *pca_);
  for (std::size_t i = 0; i < 24; ++i) {
    index.insert_signature(i, (*sigs_)[i]);
  }
  index.seal_active();
  index.compact_once();

  const std::string prom = index.metrics().to_prometheus();
  EXPECT_NE(prom.find("segment_count"), std::string::npos);
  EXPECT_NE(prom.find("compaction_runs"), std::string::npos);
  EXPECT_NE(prom.find("compaction_merge_s"), std::string::npos);
  EXPECT_NE(prom.find("tier_memtable_entries"), std::string::npos);

  const std::string json = index.metrics().to_json();
  EXPECT_NE(json.find("segment.count"), std::string::npos);
  EXPECT_NE(json.find("compaction.merge_entries"), std::string::npos);
}

TEST_F(TierTest, ConcurrentFacadeDispatchesToTier) {
  FastConfig cfg = tiered_config();
  ConcurrentFastIndex tiered(cfg, *pca_, 2);
  ConcurrentFastIndex flat(flat_config(), *pca_, 2);
  ASSERT_TRUE(tiered.is_tiered());
  ASSERT_FALSE(flat.is_tiered());

  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  tiered.insert_batch(items);
  flat.insert_batch(items);
  EXPECT_EQ(tiered.size(), flat.size());
  // The tiered facade adds no global writer lock — that is the point.
  EXPECT_EQ(tiered.writer_lock_count(), 0u);

  const std::vector<std::uint64_t> victims = {0, 2, 4, 6};
  EXPECT_EQ(tiered.erase_batch(victims), flat.erase_batch(victims));
  EXPECT_EQ(tiered.size(), flat.size());

  std::vector<const img::Image*> queries;
  for (std::size_t i = 0; i < 8; ++i) {
    queries.push_back(&dataset_->photos[i].image);
  }
  const auto a = tiered.query_batch(queries, 5);
  const auto b = flat.query_batch(queries, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_hits(a[i], b[i]);
  }
}

TEST_F(TierTest, ShardedDeploymentRunsTieredShards) {
  ShardedFastIndex tiered(tiered_config(), *pca_, 2, 2);
  ShardedFastIndex flat(flat_config(), *pca_, 2, 2);
  ASSERT_TRUE(tiered.is_tiered());
  EXPECT_EQ(tiered.shard_count(), 2u);
  for (std::size_t i = 0; i < 24; ++i) {
    tiered.insert_signature(i, (*sigs_)[i]);
    flat.insert_signature(i, (*sigs_)[i]);
  }
  EXPECT_TRUE(tiered.erase(5));
  EXPECT_TRUE(flat.erase(5));
  EXPECT_FALSE(tiered.erase(5));
  EXPECT_EQ(tiered.size(), flat.size());

  for (std::size_t q = 0; q < 24; ++q) {
    const QueryResult a = tiered.query_signature((*sigs_)[q], 5);
    const QueryResult b = flat.query_signature((*sigs_)[q], 5);
    expect_same_hits(a, b);
  }
  // The per-shard accessor reaches the tiered shard directly.
  EXPECT_GT(tiered.tiered_shard(0).size() + tiered.tiered_shard(1).size(), 0u);
}

TEST_F(TierTest, QueryEngineServesTieredBackend) {
  TieredIndex tiered(tiered_config(), *pca_);
  FastIndex flat(flat_config(), *pca_);
  for (std::size_t i = 0; i < 24; ++i) {
    tiered.insert_signature(i, (*sigs_)[i]);
    flat.insert_signature(i, (*sigs_)[i]);
  }
  QueryEngine tiered_engine(tiered, 2);
  QueryEngine flat_engine(flat, 2);
  ASSERT_TRUE(tiered_engine.is_tiered());

  const BatchReport a = tiered_engine.run_batch(*sigs_);
  const BatchReport b = flat_engine.run_batch(*sigs_);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    expect_same_hits(a.results[i], b.results[i]);
  }
  EXPECT_GE(tiered.metrics().snapshot().counters.at("engine.batches"), 1u);
}

// Matches the TSan CI regex: readers and writers race real background
// seals and compactions.
class TierStressTest : public TierTest {};

TEST_F(TierStressTest, ChurnWithBackgroundCompaction) {
  FastConfig cfg = tiered_config();
  cfg.tier.background = true;
  cfg.tier.seal_threshold = 16;
  cfg.tier.lanes = 4;
  TieredIndex index(cfg, *pca_);

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 150;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_hits{0};

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::uint64_t base = w * 100000;
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        index.insert_signature(base + i, (*sigs_)[i % sigs_->size()]);
        // Churn: every third insert retires an earlier id of this writer.
        if (i % 3 == 2) {
          index.erase(base + i - 2);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t qi = static_cast<std::size_t>(r);
      while (!stop) {
        const QueryResult res =
            index.query_signature((*sigs_)[qi % sigs_->size()], 5);
        for (const auto& hit : res.hits) {
          if (hit.score < 0.0 || hit.score > 1.0) ++bad_hits;
        }
        ++qi;
      }
    });
  }
  for (auto& t : writers) t.join();
  stop = true;
  for (auto& t : readers) t.join();
  index.wait_idle();
  EXPECT_EQ(bad_hits.load(), 0u);

  // Each writer erased floor(kPerWriter / 3) of its own ids.
  const std::size_t erased_per_writer = kPerWriter / 3;
  EXPECT_EQ(index.size(), kWriters * (kPerWriter - erased_per_writer));
  for (std::size_t w = 0; w < kWriters; ++w) {
    const std::uint64_t base = w * 100000;
    EXPECT_FALSE(index.find_signature(base + 0).has_value());
    EXPECT_TRUE(index.find_signature(base + 1).has_value());
    EXPECT_TRUE(index.find_signature(base + kPerWriter - 1).has_value());
  }
}

/// Shutdown-under-serving-load regression: snapshots racing the background
/// compaction worker used to serialize next_segment_id_ before pinning the
/// lane segment lists, so a concurrent merge could persist a snapshot
/// whose newest segment id collided with the saved counter — duplicate
/// segment ids (and wrong-window splices) after recovery. save_snapshot
/// now excludes maintenance passes, and restore advances the counter past
/// every recovered segment. The destructor's stop_worker must likewise
/// leave the index consistent after churn.
TEST_F(TierTest, ShutdownUnderChurnPreservesAckedWrites) {
  FastConfig cfg = tiered_config();
  cfg.tier.background = true;  // real worker: snapshots race compactions
  DurabilityOptions opts;
  opts.dir = ::testing::TempDir() + "fast_tier_" +
             std::to_string(::getpid()) + "_shutdown_churn";
  std::filesystem::remove_all(opts.dir);
  std::filesystem::create_directories(opts.dir);

  const std::size_t kWrites = 400;
  {
    auto opened = TieredIndex::open_or_recover(cfg, *pca_, opts);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    std::unique_ptr<TieredIndex> index = std::move(opened).value();

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      for (std::size_t id = 1; id <= kWrites; ++id) {
        index->insert_signature(id, (*sigs_)[id % sigs_->size()]);
      }
    });
    std::thread reader([&] {
      std::size_t qi = 0;
      while (!stop) {
        index->query_signature((*sigs_)[qi++ % sigs_->size()], 4);
      }
    });
    // Snapshot repeatedly while seals and merges are in flight — the
    // exact SIGTERM-during-serving shape.
    for (int s = 0; s < 5; ++s) {
      ASSERT_TRUE(index->save_snapshot().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer.join();
    ASSERT_TRUE(index->save_snapshot().ok());
    stop = true;
    reader.join();
    index->wait_idle();
    EXPECT_EQ(index->size(), kWrites);
    // unique_ptr teardown: stop_worker + WAL close under a quiesced index.
  }

  auto recovered = TieredIndex::open_or_recover(cfg, *pca_, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  std::unique_ptr<TieredIndex> index = std::move(recovered).value();
  EXPECT_EQ(index->size(), kWrites);
  // Post-recovery maintenance must splice cleanly: fresh segment ids may
  // not collide with recovered ones.
  index->seal_active();
  index->compact_once();
  index->wait_idle();
  EXPECT_EQ(index->size(), kWrites);
  for (std::size_t id = 1; id <= kWrites; id += 37) {
    EXPECT_TRUE(index->find_signature(id).has_value()) << id;
  }
}

}  // namespace
}  // namespace fast::core
