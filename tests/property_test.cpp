// Parameterized property sweeps across the hashing and storage invariants
// (TEST_P): these complement the per-module unit tests with broader
// configuration coverage.
#include <cmath>

#include <gtest/gtest.h>

#include "hash/cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/minhash.hpp"
#include "hash/pstable_lsh.hpp"
#include "hash/sparse_signature.hpp"
#include "mobile/chunker.hpp"
#include "sim/cluster_model.hpp"
#include "util/rng.hpp"

namespace fast {
namespace {

// ---------- p-stable LSH: locality across (dim, omega) ----------

struct LshParams {
  std::size_t dim;
  double omega;
};

class LshLocalityTest : public ::testing::TestWithParam<LshParams> {};

TEST_P(LshLocalityTest, NearPairsCollideMoreThanFarPairs) {
  const auto [dim, omega] = GetParam();
  hash::LshConfig cfg;
  cfg.dim = dim;
  cfg.omega = omega;
  cfg.tables = 1;
  cfg.hashes_per_table = 200;
  hash::PStableLsh lsh(cfg);
  util::Rng rng(dim * 31 + static_cast<std::uint64_t>(omega * 100));

  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  auto offset_by = [&](double dist) {
    std::vector<float> dir(dim);
    double norm = 0;
    for (auto& x : dir) {
      x = static_cast<float>(rng.gaussian());
      norm += x * x;
    }
    norm = std::sqrt(norm);
    std::vector<float> w = v;
    for (std::size_t i = 0; i < dim; ++i) {
      w[i] += static_cast<float>(dir[i] / norm * dist);
    }
    return w;
  };
  auto collisions = [&](const std::vector<float>& w) {
    std::size_t c = 0;
    for (std::size_t j = 0; j < cfg.hashes_per_table; ++j) {
      c += lsh.hash_one(0, j, v) == lsh.hash_one(0, j, w);
    }
    return c;
  };
  const std::size_t near = collisions(offset_by(omega * 0.2));
  const std::size_t far = collisions(offset_by(omega * 3.0));
  EXPECT_GT(near, far);
  EXPECT_GT(near, cfg.hashes_per_table / 2);  // near pairs mostly collide
}

INSTANTIATE_TEST_SUITE_P(Sweep, LshLocalityTest,
                         ::testing::Values(LshParams{8, 0.5},
                                           LshParams{8, 2.0},
                                           LshParams{64, 0.85},
                                           LshParams{256, 0.85},
                                           LshParams{256, 4.0}));

// ---------- MinHash: banding collision tracks Jaccard across configs ----

struct BandParams {
  std::size_t bands;
  std::size_t band_size;
};

class MinHashBandTest : public ::testing::TestWithParam<BandParams> {};

TEST_P(MinHashBandTest, HigherJaccardNeverCollidesLess) {
  const auto [bands, band_size] = GetParam();
  hash::MinHasher mh(hash::MinHashConfig{bands, band_size, 0x88});
  auto make_pair = [&](double share, std::uint64_t salt) {
    std::vector<std::uint32_t> a, b;
    const std::uint32_t n = 400;
    const auto shared = static_cast<std::uint32_t>(share * n);
    for (std::uint32_t i = 0; i < shared; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (std::uint32_t i = shared; i < n; ++i) {
      a.push_back(100000 + i + static_cast<std::uint32_t>(salt) * 7919);
      b.push_back(200000 + i + static_cast<std::uint32_t>(salt) * 104729);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return std::pair(hash::SparseSignature(a, 1 << 20),
                     hash::SparseSignature(b, 1 << 20));
  };
  auto shared_bands = [&](double share) {
    std::size_t total = 0;
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      const auto [sa, sb] = make_pair(share, salt);
      const auto ma = mh.minhashes(sa), mb = mh.minhashes(sb);
      for (std::size_t band = 0; band < bands; ++band) {
        total += mh.band_key(band, ma) == mh.band_key(band, mb);
      }
    }
    return total;
  };
  EXPECT_GE(shared_bands(0.9), shared_bands(0.5));
  EXPECT_GE(shared_bands(0.5), shared_bands(0.1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinHashBandTest,
                         ::testing::Values(BandParams{16, 1},
                                           BandParams{32, 2},
                                           BandParams{48, 2},
                                           BandParams{48, 3},
                                           BandParams{96, 4}));

// ---------- Cuckoo tables: lookup-after-insert across load/window ------

struct CuckooParams {
  std::size_t capacity;
  std::size_t window;
  double load;
};

class FlatCuckooLoadTest : public ::testing::TestWithParam<CuckooParams> {};

TEST_P(FlatCuckooLoadTest, EverySuccessfulInsertRemainsFindable) {
  const auto [capacity, window, load] = GetParam();
  hash::FlatCuckooConfig cfg;
  cfg.capacity = capacity;
  cfg.window = window;
  cfg.seed = capacity ^ window;
  hash::FlatCuckooTable table(cfg);
  const auto items =
      static_cast<std::size_t>(load * static_cast<double>(capacity));
  std::vector<std::uint64_t> stored;
  for (std::uint64_t i = 0; i < items; ++i) {
    const std::uint64_t key = hash::mix64(i ^ cfg.seed);
    if (table.insert(key, i)) stored.push_back(key);
  }
  EXPECT_EQ(table.size(), stored.size());
  for (std::size_t i = 0; i < stored.size(); ++i) {
    ASSERT_TRUE(table.contains(stored[i])) << "key index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatCuckooLoadTest,
    ::testing::Values(CuckooParams{256, 1, 0.45},
                      CuckooParams{256, 2, 0.70},
                      CuckooParams{1024, 4, 0.90},
                      CuckooParams{4096, 4, 0.93},
                      CuckooParams{4096, 8, 0.97},
                      CuckooParams{16384, 4, 0.90}));

// ---------- Sparse signatures: encode/decode across densities ----------

class SignatureCodecTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignatureCodecTest, EncodeDecodeRoundTrip) {
  const std::size_t popcount = GetParam();
  util::Rng rng(popcount + 1);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(200));
    bits.push_back(cur);
  }
  const hash::SparseSignature sig(bits, cur + 1);
  const auto encoded = sig.encode();
  EXPECT_EQ(encoded.size(), sig.storage_bytes());
  const hash::SparseSignature back = hash::SparseSignature::decode(encoded);
  EXPECT_EQ(back.set_bits(), sig.set_bits());
  EXPECT_EQ(back.bit_count(), sig.bit_count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SignatureCodecTest,
                         ::testing::Values(0, 1, 7, 64, 500, 3000));

// ---------- Chunker: coverage invariant across configurations ----------

struct ChunkParams {
  std::size_t min_chunk;
  std::size_t avg_chunk;
  std::size_t max_chunk;
};

class ChunkerSweepTest : public ::testing::TestWithParam<ChunkParams> {};

TEST_P(ChunkerSweepTest, ChunksPartitionInput) {
  const auto [min_c, avg_c, max_c] = GetParam();
  mobile::ChunkerConfig cfg;
  cfg.min_chunk = min_c;
  cfg.avg_chunk = avg_c;
  cfg.max_chunk = max_c;
  mobile::Chunker chunker(cfg);
  const auto data = mobile::synth_file_bytes(min_c * 31, 300000);
  const auto chunks = chunker.chunk(data);
  std::size_t offset = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, offset);
    EXPECT_LE(c.length, max_c);
    offset += c.length;
  }
  EXPECT_EQ(offset, data.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkerSweepTest,
                         ::testing::Values(ChunkParams{256, 1024, 8192},
                                           ChunkParams{2048, 8192, 65536},
                                           ChunkParams{4096, 16384, 32768},
                                           ChunkParams{1024, 4096, 4096}));

// ---------- Cluster model: LPT bound property --------------------------

class MakespanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MakespanTest, WithinLptBoundOfLowerBound) {
  const std::size_t slots = GetParam();
  util::Rng rng(slots);
  std::vector<double> tasks(slots * 7);
  double total = 0, longest = 0;
  for (double& t : tasks) {
    t = rng.uniform(0.1, 10.0);
    total += t;
    longest = std::max(longest, t);
  }
  const double mk = sim::ClusterModel::makespan(tasks, slots);
  const double lower = std::max(total / static_cast<double>(slots), longest);
  EXPECT_GE(mk, lower - 1e-9);
  EXPECT_LE(mk, lower * 4.0 / 3.0 + 1e-9);  // LPT guarantee
}

INSTANTIATE_TEST_SUITE_P(Sweep, MakespanTest,
                         ::testing::Values(1, 2, 4, 8, 32, 256));

}  // namespace
}  // namespace fast
