// Parameterized property sweeps across the hashing and storage invariants
// (TEST_P): these complement the per-module unit tests with broader
// configuration coverage.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "hash/cuckoo_table.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/minhash.hpp"
#include "hash/pstable_lsh.hpp"
#include "hash/sparse_signature.hpp"
#include "mobile/chunker.hpp"
#include "sim/cluster_model.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace fast {
namespace {

// ---------- p-stable LSH: locality across (dim, omega) ----------

struct LshParams {
  std::size_t dim;
  double omega;
};

class LshLocalityTest : public ::testing::TestWithParam<LshParams> {};

TEST_P(LshLocalityTest, NearPairsCollideMoreThanFarPairs) {
  const auto [dim, omega] = GetParam();
  hash::LshConfig cfg;
  cfg.dim = dim;
  cfg.omega = omega;
  cfg.tables = 1;
  cfg.hashes_per_table = 200;
  hash::PStableLsh lsh(cfg);
  util::Rng rng(dim * 31 + static_cast<std::uint64_t>(omega * 100));

  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  auto offset_by = [&](double dist) {
    std::vector<float> dir(dim);
    double norm = 0;
    for (auto& x : dir) {
      x = static_cast<float>(rng.gaussian());
      norm += x * x;
    }
    norm = std::sqrt(norm);
    std::vector<float> w = v;
    for (std::size_t i = 0; i < dim; ++i) {
      w[i] += static_cast<float>(dir[i] / norm * dist);
    }
    return w;
  };
  auto collisions = [&](const std::vector<float>& w) {
    std::size_t c = 0;
    for (std::size_t j = 0; j < cfg.hashes_per_table; ++j) {
      c += lsh.hash_one(0, j, v) == lsh.hash_one(0, j, w);
    }
    return c;
  };
  const std::size_t near = collisions(offset_by(omega * 0.2));
  const std::size_t far = collisions(offset_by(omega * 3.0));
  EXPECT_GT(near, far);
  EXPECT_GT(near, cfg.hashes_per_table / 2);  // near pairs mostly collide
}

INSTANTIATE_TEST_SUITE_P(Sweep, LshLocalityTest,
                         ::testing::Values(LshParams{8, 0.5},
                                           LshParams{8, 2.0},
                                           LshParams{64, 0.85},
                                           LshParams{256, 0.85},
                                           LshParams{256, 4.0}));

// ---------- MinHash: banding collision tracks Jaccard across configs ----

struct BandParams {
  std::size_t bands;
  std::size_t band_size;
};

class MinHashBandTest : public ::testing::TestWithParam<BandParams> {};

TEST_P(MinHashBandTest, HigherJaccardNeverCollidesLess) {
  const auto [bands, band_size] = GetParam();
  hash::MinHasher mh(hash::MinHashConfig{bands, band_size, 0x88});
  auto make_pair = [&](double share, std::uint64_t salt) {
    std::vector<std::uint32_t> a, b;
    const std::uint32_t n = 400;
    const auto shared = static_cast<std::uint32_t>(share * n);
    for (std::uint32_t i = 0; i < shared; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (std::uint32_t i = shared; i < n; ++i) {
      a.push_back(100000 + i + static_cast<std::uint32_t>(salt) * 7919);
      b.push_back(200000 + i + static_cast<std::uint32_t>(salt) * 104729);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return std::pair(hash::SparseSignature(a, 1 << 20),
                     hash::SparseSignature(b, 1 << 20));
  };
  auto shared_bands = [&](double share) {
    std::size_t total = 0;
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      const auto [sa, sb] = make_pair(share, salt);
      const auto ma = mh.minhashes(sa), mb = mh.minhashes(sb);
      for (std::size_t band = 0; band < bands; ++band) {
        total += mh.band_key(band, ma) == mh.band_key(band, mb);
      }
    }
    return total;
  };
  EXPECT_GE(shared_bands(0.9), shared_bands(0.5));
  EXPECT_GE(shared_bands(0.5), shared_bands(0.1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinHashBandTest,
                         ::testing::Values(BandParams{16, 1},
                                           BandParams{32, 2},
                                           BandParams{48, 2},
                                           BandParams{48, 3},
                                           BandParams{96, 4}));

// ---------- Cuckoo tables: lookup-after-insert across load/window ------

struct CuckooParams {
  std::size_t capacity;
  std::size_t window;
  double load;
};

class FlatCuckooLoadTest : public ::testing::TestWithParam<CuckooParams> {};

TEST_P(FlatCuckooLoadTest, EverySuccessfulInsertRemainsFindable) {
  const auto [capacity, window, load] = GetParam();
  hash::FlatCuckooConfig cfg;
  cfg.capacity = capacity;
  cfg.window = window;
  cfg.seed = capacity ^ window;
  hash::FlatCuckooTable table(cfg);
  const auto items =
      static_cast<std::size_t>(load * static_cast<double>(capacity));
  std::vector<std::uint64_t> stored;
  for (std::uint64_t i = 0; i < items; ++i) {
    const std::uint64_t key = hash::mix64(i ^ cfg.seed);
    if (table.insert(key, i)) stored.push_back(key);
  }
  EXPECT_EQ(table.size(), stored.size());
  for (std::size_t i = 0; i < stored.size(); ++i) {
    ASSERT_TRUE(table.contains(stored[i])) << "key index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatCuckooLoadTest,
    ::testing::Values(CuckooParams{256, 1, 0.45},
                      CuckooParams{256, 2, 0.70},
                      CuckooParams{1024, 4, 0.90},
                      CuckooParams{4096, 4, 0.93},
                      CuckooParams{4096, 8, 0.97},
                      CuckooParams{16384, 4, 0.90}));

// ---------- Sparse signatures: encode/decode across densities ----------

class SignatureCodecTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignatureCodecTest, EncodeDecodeRoundTrip) {
  const std::size_t popcount = GetParam();
  util::Rng rng(popcount + 1);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(200));
    bits.push_back(cur);
  }
  const hash::SparseSignature sig(bits, cur + 1);
  const auto encoded = sig.encode();
  EXPECT_EQ(encoded.size(), sig.storage_bytes());
  const hash::SparseSignature back = hash::SparseSignature::decode(encoded);
  EXPECT_EQ(back.set_bits(), sig.set_bits());
  EXPECT_EQ(back.bit_count(), sig.bit_count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SignatureCodecTest,
                         ::testing::Values(0, 1, 7, 64, 500, 3000));

// ---------- Chunker: coverage invariant across configurations ----------

struct ChunkParams {
  std::size_t min_chunk;
  std::size_t avg_chunk;
  std::size_t max_chunk;
};

class ChunkerSweepTest : public ::testing::TestWithParam<ChunkParams> {};

TEST_P(ChunkerSweepTest, ChunksPartitionInput) {
  const auto [min_c, avg_c, max_c] = GetParam();
  mobile::ChunkerConfig cfg;
  cfg.min_chunk = min_c;
  cfg.avg_chunk = avg_c;
  cfg.max_chunk = max_c;
  mobile::Chunker chunker(cfg);
  const auto data = mobile::synth_file_bytes(min_c * 31, 300000);
  const auto chunks = chunker.chunk(data);
  std::size_t offset = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.offset, offset);
    EXPECT_LE(c.length, max_c);
    offset += c.length;
  }
  EXPECT_EQ(offset, data.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChunkerSweepTest,
                         ::testing::Values(ChunkParams{256, 1024, 8192},
                                           ChunkParams{2048, 8192, 65536},
                                           ChunkParams{4096, 16384, 32768},
                                           ChunkParams{1024, 4096, 4096}));

// ---------- Durable index: snapshot/recover round-trip property --------
//
// For any mutation history (random inserts and erases) and either CHS
// backend, snapshot + recover must reproduce the index BIT-EXACTLY: the
// same signatures, the same correlation groups, and identical ranked
// results for arbitrary queries.

struct RecoveryRoundTripParams {
  std::uint64_t seed;
  core::FastConfig::ChsBackend backend;
};

class RecoveryRoundTripTest
    : public ::testing::TestWithParam<RecoveryRoundTripParams> {};

hash::SparseSignature random_signature(util::Rng& rng,
                                       std::size_t bloom_bits) {
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  const std::size_t popcount = 48 + rng.uniform_u64(96);
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(
                   rng.uniform_u64(bloom_bits / (popcount + 1)));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(bits, bloom_bits);
}

TEST_P(RecoveryRoundTripTest, SnapshotRecoverIsBitExact) {
  const auto [seed, backend] = GetParam();
  core::FastConfig cfg;
  cfg.cuckoo.capacity = 256;
  cfg.chs_backend = backend;
  const vision::PcaModel pca = test::fake_pca();

  const std::string dir = ::testing::TempDir() + "fast_property_rt_" +
                          std::to_string(seed) + "_" +
                          std::to_string(static_cast<int>(backend));
  std::filesystem::remove_all(dir);

  core::DurabilityOptions opts;
  opts.dir = dir;
  auto opened = core::FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  core::FastIndex live = std::move(opened).value();

  // Random mutation history: mostly inserts, with erases (and occasional
  // re-inserts of erased ids) mixed in. A mid-history snapshot exercises
  // the snapshot-plus-tail recovery path.
  util::Rng rng(seed);
  std::vector<std::uint64_t> present;
  const std::size_t mutations = 60;
  for (std::size_t i = 0; i < mutations; ++i) {
    if (!present.empty() && rng.uniform_u64(100) < 25) {
      const std::size_t victim = rng.uniform_u64(present.size());
      ASSERT_TRUE(live.erase(present[victim]));
      present.erase(present.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    } else {
      const std::uint64_t id = rng.uniform_u64(80);
      if (live.signature_of(id) != nullptr) {
        ASSERT_TRUE(live.erase(id));
        present.erase(std::find(present.begin(), present.end(), id));
      }
      live.insert_signature(id, random_signature(rng, cfg.bloom_bits));
      present.push_back(id);
    }
    if (i == mutations / 2) {
      ASSERT_TRUE(live.save_snapshot().ok());
    }
  }

  core::RecoveryStats stats;
  auto recovered = core::FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(recovered.value().last_seq(), live.last_seq());

  ASSERT_EQ(recovered.value().size(), live.size());
  ASSERT_EQ(recovered.value().group_count(), live.group_count());
  for (std::uint64_t id = 0; id < 80; ++id) {
    const hash::SparseSignature* a = live.signature_of(id);
    const hash::SparseSignature* b = recovered.value().signature_of(id);
    ASSERT_EQ(a == nullptr, b == nullptr) << "id " << id;
    if (a != nullptr) {
      EXPECT_EQ(a->set_bits(), b->set_bits()) << "id " << id;
    }
  }
  for (std::size_t g = 0; g < live.group_count(); ++g) {
    const auto ga = live.group_members(g);
    const auto gb = recovered.value().group_members(g);
    ASSERT_EQ(ga.size(), gb.size()) << "group " << g;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i], gb[i]) << "group " << g << " member " << i;
    }
  }
  for (std::uint64_t q = 0; q < 8; ++q) {
    const auto sig = random_signature(rng, cfg.bloom_bits);
    const core::QueryResult ra = live.query_signature(sig, 10);
    const core::QueryResult rb = recovered.value().query_signature(sig, 10);
    ASSERT_EQ(ra.hits.size(), rb.hits.size()) << "query " << q;
    for (std::size_t i = 0; i < ra.hits.size(); ++i) {
      EXPECT_EQ(ra.hits[i].id, rb.hits[i].id) << "query " << q;
      EXPECT_EQ(ra.hits[i].score, rb.hits[i].score) << "query " << q;
    }
    EXPECT_EQ(ra.candidates, rb.candidates) << "query " << q;
    EXPECT_EQ(ra.bucket_probes, rb.bucket_probes) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryRoundTripTest,
    ::testing::Values(
        RecoveryRoundTripParams{1, core::FastConfig::ChsBackend::kFlatCuckoo},
        RecoveryRoundTripParams{2, core::FastConfig::ChsBackend::kFlatCuckoo},
        RecoveryRoundTripParams{3, core::FastConfig::ChsBackend::kFlatCuckoo},
        RecoveryRoundTripParams{4, core::FastConfig::ChsBackend::kChained},
        RecoveryRoundTripParams{5, core::FastConfig::ChsBackend::kChained},
        RecoveryRoundTripParams{6, core::FastConfig::ChsBackend::kChained},
        RecoveryRoundTripParams{
            7, core::FastConfig::ChsBackend::kCompactFlatCuckoo},
        RecoveryRoundTripParams{
            8, core::FastConfig::ChsBackend::kCompactFlatCuckoo},
        RecoveryRoundTripParams{
            9, core::FastConfig::ChsBackend::kCompactFlatCuckoo}));

// ---------- Cluster model: LPT bound property --------------------------

class MakespanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MakespanTest, WithinLptBoundOfLowerBound) {
  const std::size_t slots = GetParam();
  util::Rng rng(slots);
  std::vector<double> tasks(slots * 7);
  double total = 0, longest = 0;
  for (double& t : tasks) {
    t = rng.uniform(0.1, 10.0);
    total += t;
    longest = std::max(longest, t);
  }
  const double mk = sim::ClusterModel::makespan(tasks, slots);
  const double lower = std::max(total / static_cast<double>(slots), longest);
  EXPECT_GE(mk, lower - 1e-9);
  EXPECT_LE(mk, lower * 4.0 / 3.0 + 1e-9);  // LPT guarantee
}

INSTANTIATE_TEST_SUITE_P(Sweep, MakespanTest,
                         ::testing::Values(1, 2, 4, 8, 32, 256));

}  // namespace
}  // namespace fast
