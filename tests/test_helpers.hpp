// Shared fixtures for the test suite: cheap deterministic PCA models and
// small synthetic datasets, so vision/core tests stay fast.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/vecmath.hpp"
#include "vision/pca.hpp"
#include "workload/dataset.hpp"
#include "workload/scene_generator.hpp"

namespace fast::test {

/// A deterministic stand-in for the trained PCA-SIFT eigenspace: random
/// near-orthonormal projection rows with matched eigenvalues. Adequate wherever
/// a test needs *a* projection but not a data-adapted one (real training is
/// covered by the vision tests and used in the benches).
inline vision::PcaModel fake_pca(std::size_t input_dim = 578,
                                 std::size_t output_dim = 36,
                                 std::uint64_t seed = 0xfa4e) {
  vision::PcaModel model;
  model.mean.assign(input_dim, 0.0f);
  util::Rng rng(seed);
  model.components.resize(output_dim);
  // Projecting unit-norm patches through random unit rows yields values
  // with variance ~1/input_dim; the eigenvalues must reflect that so the
  // summarizer's whitening produces ~N(0,1) components.
  model.eigenvalues.assign(output_dim,
                           1.0f / static_cast<float>(input_dim));
  for (auto& row : model.components) {
    row.resize(input_dim);
    for (auto& v : row) v = static_cast<float>(rng.gaussian());
    util::normalize_l2(row);
  }
  return model;
}

/// A small, quickly generated dataset (64-pixel images).
inline workload::Dataset small_dataset(std::size_t images = 30,
                                       std::uint64_t seed = 7) {
  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(images);
  spec.image_size = 96;
  spec.seed = seed;
  return workload::SceneGenerator(spec).generate();
}

}  // namespace fast::test
