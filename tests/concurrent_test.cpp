// Concurrency tests: queries racing inserts/erases through the
// ConcurrentFastIndex facade must never crash, lose acknowledged inserts,
// or return ids that were never inserted.
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "core/concurrent_index.hpp"
#include "test_helpers.hpp"

namespace fast::core {
namespace {

class ConcurrentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workload::Dataset(test::small_dataset(32));
    pca_ = new vision::PcaModel(test::fake_pca());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pca_;
    dataset_ = nullptr;
    pca_ = nullptr;
  }
  static FastConfig small_config() {
    FastConfig cfg;
    cfg.cuckoo.capacity = 256;
    return cfg;
  }
  static workload::Dataset* dataset_;
  static vision::PcaModel* pca_;
};

workload::Dataset* ConcurrentTest::dataset_ = nullptr;
vision::PcaModel* ConcurrentTest::pca_ = nullptr;

TEST_F(ConcurrentTest, SerialSemanticsMatchFastIndex) {
  ConcurrentFastIndex concurrent(small_config(), *pca_);
  FastIndex plain(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (std::size_t i = 0; i < 16; ++i) {
    sigs.push_back(plain.summarize(dataset_->photos[i].image));
    concurrent.insert_signature(i, sigs.back());
    plain.insert_signature(i, sigs.back());
  }
  EXPECT_EQ(concurrent.size(), plain.size());
  for (std::size_t i = 0; i < 16; ++i) {
    const QueryResult a = concurrent.query_signature(sigs[i], 3);
    const QueryResult b = plain.query_signature(sigs[i], 3);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(a.hits[h].id, b.hits[h].id);
    }
  }
}

TEST_F(ConcurrentTest, QueriesRaceInsertsWithoutLosses) {
  ConcurrentFastIndex index(small_config(), *pca_);
  // Precompute signatures so worker threads exercise the locked paths hard.
  std::vector<hash::SparseSignature> sigs;
  FastIndex helper(small_config(), *pca_);
  for (const auto& photo : dataset_->photos) {
    sigs.push_back(helper.summarize(photo.image));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_hits{0};
  const std::size_t n = sigs.size();

  std::thread writer([&] {
    for (std::size_t round = 0; round < 20; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        index.insert_signature(round * n + i, sigs[i]);
      }
      // Erase half of this round's ids again.
      for (std::size_t i = 0; i < n / 2; ++i) {
        index.erase(round * n + i);
      }
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t qi = static_cast<std::size_t>(r);
      while (!stop) {
        const QueryResult res = index.query_signature(sigs[qi % n], 5);
        for (const auto& hit : res.hits) {
          // Any returned id must be one the writer could have inserted.
          if (hit.id % n >= n) ++bad_hits;
          if (hit.score < 0.0 || hit.score > 1.0) ++bad_hits;
        }
        ++qi;
        // Spend a moment off the lock: two readers re-acquiring back to
        // back can starve the writer of the exclusive lock indefinitely
        // under TSan's slowdown (shared_mutex makes no fairness promise).
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_hits.load(), 0u);

  // Every id the writer left in place is still retrievable.
  for (std::size_t i = n / 2; i < n; ++i) {
    const QueryResult res = index.query_signature(sigs[i], 1);
    ASSERT_FALSE(res.hits.empty());
    EXPECT_DOUBLE_EQ(res.hits.front().score, 1.0);
  }
}

TEST_F(ConcurrentTest, ParallelInsertersAllLand) {
  ConcurrentFastIndex index(small_config(), *pca_);
  FastIndex helper(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (const auto& photo : dataset_->photos) {
    sigs.push_back(helper.summarize(photo.image));
  }
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < sigs.size(); ++i) {
        index.insert_signature(t * 1000 + i, sigs[i]);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(index.size(), kThreads * sigs.size());
}

// Regression: the concurrent facade used to drop the FE + Bloom-hash
// charges that FastIndex::insert applies, so the same upload was billed
// less when it went through the thread-safe path. All three insert paths
// and the query path must charge identically.
TEST_F(ConcurrentTest, InsertCostMatchesPlainIndex) {
  ConcurrentFastIndex concurrent(small_config(), *pca_);
  FastIndex plain(small_config(), *pca_);
  for (std::size_t i = 0; i < 8; ++i) {
    const InsertResult a = concurrent.insert(i, dataset_->photos[i].image);
    const InsertResult b = plain.insert(i, dataset_->photos[i].image);
    EXPECT_DOUBLE_EQ(a.cost.elapsed_s(), b.cost.elapsed_s()) << i;
    EXPECT_EQ(a.cost.hash_ops(), b.cost.hash_ops()) << i;
    EXPECT_EQ(a.cost.ram_accesses(), b.cost.ram_accesses()) << i;
  }
}

TEST_F(ConcurrentTest, InsertBatchCostMatchesPlainIndex) {
  ConcurrentFastIndex concurrent(small_config(), *pca_, 2);
  FastIndex plain(small_config(), *pca_);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 10; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  const auto batch = concurrent.insert_batch(items);
  ASSERT_EQ(batch.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const InsertResult b = plain.insert(items[i].id, *items[i].image);
    EXPECT_DOUBLE_EQ(batch[i].cost.elapsed_s(), b.cost.elapsed_s()) << i;
    EXPECT_EQ(batch[i].cost.hash_ops(), b.cost.hash_ops()) << i;
  }
}

TEST_F(ConcurrentTest, QueryCostMatchesPlainIndex) {
  ConcurrentFastIndex concurrent(small_config(), *pca_);
  FastIndex plain(small_config(), *pca_);
  for (std::size_t i = 0; i < 8; ++i) {
    concurrent.insert(i, dataset_->photos[i].image);
    plain.insert(i, dataset_->photos[i].image);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const QueryResult a = concurrent.query(dataset_->photos[i].image, 3);
    const QueryResult b = plain.query(dataset_->photos[i].image, 3);
    EXPECT_DOUBLE_EQ(a.cost.elapsed_s(), b.cost.elapsed_s()) << i;
    EXPECT_EQ(a.cost.hash_ops(), b.cost.hash_ops()) << i;
    EXPECT_EQ(a.cost.ram_accesses(), b.cost.ram_accesses()) << i;
  }
}

TEST_F(ConcurrentTest, InsertBatchTakesWriterLockOncePerBatch) {
  ConcurrentFastIndex index(small_config(), *pca_, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 16; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  const std::size_t locks_before = index.writer_lock_count();
  const auto results = index.insert_batch(items);
  EXPECT_EQ(index.writer_lock_count(), locks_before + 1);
  ASSERT_EQ(results.size(), items.size());
  EXPECT_EQ(index.size(), items.size());

  // The per-image path pays one writer-lock round-trip per insert.
  const std::size_t locks_mid = index.writer_lock_count();
  for (std::size_t i = 16; i < 20; ++i) {
    index.insert(i, dataset_->photos[i].image);
  }
  EXPECT_EQ(index.writer_lock_count(), locks_mid + 4);
}

// erase_batch is the write-side twin of insert_batch: one writer-lock
// acquisition for the whole batch, and the same net effect as a loop of
// single erases.
TEST_F(ConcurrentTest, EraseBatchTakesWriterLockOncePerBatch) {
  ConcurrentFastIndex batched(small_config(), *pca_, 2);
  ConcurrentFastIndex looped(small_config(), *pca_, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 16; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  batched.insert_batch(items);
  looped.insert_batch(items);

  std::vector<std::uint64_t> victims = {0, 2, 4, 6, 99, 4};
  const std::size_t locks_before = batched.writer_lock_count();
  const std::size_t erased = batched.erase_batch(victims);
  EXPECT_EQ(batched.writer_lock_count(), locks_before + 1);
  // 99 was never inserted and 4 repeats: four distinct ids went away.
  EXPECT_EQ(erased, 4u);

  // The looped path pays one lock per call but lands on the same state.
  const std::size_t looped_before = looped.writer_lock_count();
  std::size_t looped_erased = 0;
  for (const std::uint64_t id : victims) {
    if (looped.erase(id)) ++looped_erased;
  }
  EXPECT_EQ(looped.writer_lock_count(), looped_before + victims.size());
  EXPECT_EQ(erased, looped_erased);
  EXPECT_EQ(batched.size(), looped.size());

  // Both facades exported the batch size to the shared registry.
  const auto snapshot = batched.metrics().snapshot();
  const auto it = snapshot.histograms.find("concurrent.erase_batch_size");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_EQ(it->second.count, 1u);
}

TEST_F(ConcurrentTest, BatchMatchesPerImagePath) {
  ConcurrentFastIndex batched(small_config(), *pca_, 2);
  ConcurrentFastIndex sequential(small_config(), *pca_, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < 12; ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  batched.insert_batch(items);
  for (const auto& item : items) sequential.insert(item.id, *item.image);
  EXPECT_EQ(batched.size(), sequential.size());

  std::vector<const img::Image*> queries;
  for (std::size_t i = 0; i < 6; ++i) {
    queries.push_back(&dataset_->photos[i].image);
  }
  const auto batch_results = batched.query_batch(queries, 3);
  ASSERT_EQ(batch_results.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryResult single = sequential.query(*queries[i], 3);
    ASSERT_EQ(batch_results[i].hits.size(), single.hits.size());
    for (std::size_t h = 0; h < single.hits.size(); ++h) {
      EXPECT_EQ(batch_results[i].hits[h].id, single.hits[h].id);
      EXPECT_DOUBLE_EQ(batch_results[i].hits[h].score, single.hits[h].score);
    }
  }
}

TEST_F(ConcurrentTest, QueriesRaceBatchInsertsWithoutLosses) {
  ConcurrentFastIndex index(small_config(), *pca_, 2);
  std::vector<BatchImage> items;
  for (std::size_t i = 0; i < dataset_->photos.size(); ++i) {
    items.push_back(BatchImage{i, &dataset_->photos[i].image});
  }
  FastIndex helper(small_config(), *pca_);
  std::vector<hash::SparseSignature> sigs;
  for (const auto& photo : dataset_->photos) {
    sigs.push_back(helper.summarize(photo.image));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_hits{0};
  std::thread writer([&] {
    for (std::size_t round = 0; round < 4; ++round) {
      std::vector<BatchImage> batch = items;
      for (auto& item : batch) item.id += round * 1000;
      index.insert_batch(batch);
    }
    stop = true;
  });
  std::thread reader([&] {
    std::size_t qi = 0;
    while (!stop) {
      const QueryResult res = index.query_signature(sigs[qi % sigs.size()], 5);
      for (const auto& hit : res.hits) {
        if (hit.score < 0.0 || hit.score > 1.0) ++bad_hits;
      }
      ++qi;
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(bad_hits.load(), 0u);
  EXPECT_EQ(index.size(), 4 * items.size());
}

}  // namespace
}  // namespace fast::core
