// Tests for the per-stage metrics layer: counters, gauges, fixed-bucket
// histograms, registry snapshots and the JSON export the benches dump.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.hpp"

namespace fast::util {
namespace {

TEST(MetricsCounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsGaugeTest, HoldsLastWrittenDouble) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(MetricsHistogramTest, RoutesObservationsToBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e6);    // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
}

TEST(MetricsHistogramTest, TracksSumMinMaxMean) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // no observations yet
  h.observe(0.5);
  h.observe(1.5);
  h.observe(4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(MetricsHistogramTest, ConcurrentObservationsAllLand) {
  Histogram h(MetricsRegistry::count_bounds());
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(i % 64));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_sum += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 63.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {5.0});  // second bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared").add();
        reg.gauge("g").set(1.0);
        reg.latency_histogram("lat").observe(1e-4);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("shared"), kThreads * 200u);
  EXPECT_EQ(snap.histograms.at("lat").count, kThreads * 200u);
}

TEST(MetricsRegistryTest, SnapshotCopiesEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("events").add(7);
  reg.gauge("load").set(0.5);
  Histogram& h = reg.count_histogram("sizes");
  h.observe(3.0);
  h.observe(100.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("load"), 0.5);
  const auto& hd = snap.histograms.at("sizes");
  EXPECT_EQ(hd.count, 2u);
  EXPECT_DOUBLE_EQ(hd.sum, 103.0);
  EXPECT_DOUBLE_EQ(hd.min, 3.0);
  EXPECT_DOUBLE_EQ(hd.max, 100.0);
  EXPECT_EQ(hd.counts.size(), hd.bounds.size() + 1);

  // The snapshot is detached: later updates do not alter it.
  reg.counter("events").add(100);
  EXPECT_EQ(snap.counters.at("events"), 7u);
}

TEST(MetricsRegistryTest, DefaultBoundsAreStrictlyAscending) {
  for (const auto& bounds :
       {MetricsRegistry::latency_bounds(), MetricsRegistry::count_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(MetricsRegistryTest, JsonExportContainsAllSections) {
  MetricsRegistry reg;
  reg.counter("fe_sm.images").add(12);
  reg.gauge("chs.load_factor").set(0.25);
  reg.latency_histogram("fe_sm.summarize_s").observe(0.002);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"fe_sm.images\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"chs.load_factor\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"fe_sm.summarize_s\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"overflow\""), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonRoundTripsThroughDisk) {
  MetricsRegistry reg;
  reg.counter("index.inserts").add(5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fast_metrics_test.json")
          .string();
  reg.write_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.to_json());
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, WriteJsonThrowsOnUnwritablePath) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.write_json("/nonexistent-dir/metrics.json"),
               std::runtime_error);
}

TEST(MetricsPercentileTest, InterpolatesInsideTheOwningBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  // 100 observations spread over (1, 2]: ranks map linearly into the
  // bucket, clamped to the observed extremes.
  for (int i = 1; i <= 100; ++i) {
    h.observe(1.0 + static_cast<double>(i) / 100.0);
  }
  const auto hd = reg.snapshot().histograms.at("lat");
  EXPECT_NEAR(hd.percentile(50.0), 1.5, 0.02);
  EXPECT_NEAR(hd.percentile(90.0), 1.9, 0.02);
  EXPECT_NEAR(hd.percentile(99.0), 1.99, 0.02);
  // Percentiles never leave [min, max], even with coarse buckets.
  EXPECT_GE(hd.percentile(0.0), hd.min);
  EXPECT_LE(hd.percentile(100.0), hd.max);
}

TEST(MetricsPercentileTest, HandlesEmptyOverflowAndSingleObservation) {
  MetricsRegistry reg;
  const auto empty = reg.snapshot();
  Histogram& h = reg.histogram("h", {1.0});
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms.at("h").percentile(50.0), 0.0);
  h.observe(5.0);  // lands in the overflow bucket
  auto hd = reg.snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(hd.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(hd.percentile(99.0), 5.0);
  (void)empty;
}

TEST(MetricsRegistryTest, JsonExportDerivesPercentilesInSortedKeyOrder) {
  MetricsRegistry reg;
  Histogram& h = reg.latency_histogram("query_s");
  for (int i = 0; i < 64; ++i) h.observe(1e-3);
  const std::string json = reg.to_json();
  for (const char* key : {"\"p50\"", "\"p90\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Stable (alphabetical) field order inside the histogram object, so dumps
  // from different runs diff cleanly.
  const std::vector<const char*> order = {
      "\"buckets\"", "\"count\"", "\"max\"", "\"min\"",
      "\"overflow\"", "\"p50\"", "\"p90\"", "\"p99\"", "\"sum\""};
  std::size_t prev = 0;
  for (const char* key : order) {
    const std::size_t pos = json.find(key);
    ASSERT_NE(pos, std::string::npos) << key;
    EXPECT_GT(pos, prev) << key << " out of order";
    prev = pos;
  }
}

TEST(MetricsPrometheusTest, ExposesCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry reg;
  reg.counter("index.inserts").add(7);
  reg.gauge("chs.load_factor").set(0.5);
  Histogram& h = reg.histogram("probe_s", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);  // overflow

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE index_inserts counter"), std::string::npos);
  EXPECT_NE(text.find("index_inserts 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE chs_load_factor gauge"), std::string::npos);
  EXPECT_NE(text.find("chs_load_factor 0.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE probe_s histogram"), std::string::npos);
  // Buckets are cumulative and +Inf equals the total count.
  EXPECT_NE(text.find("probe_s_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("probe_s_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("probe_s_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("probe_s_sum 11"), std::string::npos);
  EXPECT_NE(text.find("probe_s_count 3"), std::string::npos);
}

// --- CounterRateTracker (fake clock throughout) ----------------------------

TEST(CounterRateTrackerTest, UnknownAndJustSeededCountersRateZero) {
  CounterRateTracker t(8);
  EXPECT_DOUBLE_EQ(t.rate("missing", 10, 100.0), 0.0);
  t.feed({{"reqs", 1000}}, 100.0);  // first sight only seeds the baseline
  EXPECT_DOUBLE_EQ(t.rate("reqs", 10, 100.0), 0.0);
}

TEST(CounterRateTrackerTest, SteadyRateOverBothWindows) {
  CounterRateTracker t(64);
  // 100 events/second for 70 seconds.
  for (int s = 0; s <= 70; ++s) {
    t.feed({{"reqs", static_cast<std::uint64_t>(s) * 100}},
           static_cast<double>(s));
  }
  EXPECT_NEAR(t.rate("reqs", 10, 70.0), 100.0, 1e-9);
  EXPECT_NEAR(t.rate("reqs", 60, 70.0), 100.0, 1e-9);
}

TEST(CounterRateTrackerTest, SameSecondFeedsAccumulate) {
  CounterRateTracker t(8);
  t.feed({{"reqs", 0}}, 5.0);
  t.feed({{"reqs", 30}}, 5.2);
  t.feed({{"reqs", 50}}, 5.9);  // still second 5: bucket holds 50
  EXPECT_NEAR(t.rate("reqs", 1, 5.9), 50.0, 1e-9);
}

TEST(CounterRateTrackerTest, SkippedSecondsCountAsZero) {
  CounterRateTracker t(64);
  t.feed({{"reqs", 0}}, 0.0);
  t.feed({{"reqs", 100}}, 1.0);
  // Nothing for 8 seconds, then one more burst.
  t.feed({{"reqs", 200}}, 10.0);
  // Trailing 10s window ending at t=10 covers seconds 1..10: 100 at s=1
  // and 100 at s=10, the gap zeroed.
  EXPECT_NEAR(t.rate("reqs", 10, 10.0), 20.0, 1e-9);
  EXPECT_NEAR(t.rate("reqs", 1, 10.0), 100.0, 1e-9);
}

TEST(CounterRateTrackerTest, GapLongerThanRingZeroesEverything) {
  CounterRateTracker t(8);
  t.feed({{"reqs", 0}}, 0.0);
  t.feed({{"reqs", 800}}, 1.0);
  // A silence much longer than the 8s ring: old buckets must not alias
  // back into the window after wraparound.
  t.feed({{"reqs", 808}}, 100.0);
  EXPECT_NEAR(t.rate("reqs", 8, 100.0), 1.0, 1e-9);
}

TEST(CounterRateTrackerTest, CounterResetTreatsNewValueAsDelta) {
  CounterRateTracker t(16);
  t.feed({{"reqs", 500}}, 0.0);
  t.feed({{"reqs", 600}}, 1.0);
  // Process restarted: the cumulative value fell. The full new value is
  // credited instead of a bogus huge unsigned diff.
  t.feed({{"reqs", 40}}, 2.0);
  EXPECT_NEAR(t.rate("reqs", 1, 2.0), 40.0, 1e-9);
  EXPECT_NEAR(t.rate("reqs", 2, 2.0), 70.0, 1e-9);
}

TEST(CounterRateTrackerTest, WindowClampsToCapacity) {
  CounterRateTracker t(4);
  for (int s = 0; s <= 4; ++s) {
    t.feed({{"reqs", static_cast<std::uint64_t>(s) * 10}},
           static_cast<double>(s));
  }
  // Asking for a 100s window over a 4s ring clamps to 4 seconds.
  EXPECT_NEAR(t.rate("reqs", 100, 4.0), 10.0, 1e-9);
  // A zero window clamps up to 1 second.
  EXPECT_NEAR(t.rate("reqs", 0, 4.0), 10.0, 1e-9);
}

// --- Process gauges --------------------------------------------------------

TEST(ProcessGaugesTest, SampleFillsLinuxGauges) {
  MetricsRegistry reg;
  sample_process_gauges(reg);
  const MetricsSnapshot snap = reg.snapshot();
#if defined(__linux__)
  EXPECT_GT(snap.gauges.at("process.rss_bytes"), 0.0);
  EXPECT_GE(snap.gauges.at("process.threads"), 1.0);
  EXPECT_GT(snap.gauges.at("process.open_fds"), 0.0);
  EXPECT_GE(snap.gauges.at("process.uptime_s"), 0.0);
#else
  (void)snap;
#endif
}

TEST(ProcessGaugesTest, UptimeIsMonotoneNonNegative) {
  const double a = process_uptime_s();
  const double b = process_uptime_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(MetricsPrometheusTest, SanitizesMetricNames) {
  MetricsRegistry reg;
  reg.counter("fe_sm.summarize-ops").add(1);
  reg.counter("9lives").add(2);
  const std::string text = reg.to_prometheus();
  // '.' and '-' are outside [a-zA-Z0-9_:] and become '_'; a leading digit
  // gets a '_' prefix.
  EXPECT_NE(text.find("fe_sm_summarize_ops 1"), std::string::npos);
  EXPECT_NE(text.find("_9lives 2"), std::string::npos);
  EXPECT_EQ(text.find("fe_sm.summarize-ops"), std::string::npos);
}

}  // namespace
}  // namespace fast::util
