// Crash-recovery validation for the durable index (snapshot + WAL).
//
// Two layers:
//  - RecoveryTest: directed scenarios over the recovery contract — WAL
//    replay, snapshot fallback, torn tails, config mismatch, retention.
//  - CrashMatrixTest: exhaustive fault sweeps. A scripted workload runs
//    under FaultInjectingEnv once per failure point (every mutating I/O op
//    x {fail, short write, torn write}); after each planned crash the
//    directory is recovered with a clean env and the result is compared
//    BIT-EXACTLY against a reference index built from the acknowledged
//    operations. The invariants: no acknowledged record is ever lost, no
//    erased id is ever resurrected, and at most the single in-flight
//    mutation may additionally survive.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fast_index.hpp"
#include "core/tiered_index.hpp"
#include "storage/io.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"
#include "golden_fixture.hpp"
#include "test_helpers.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace fast::core {
namespace {

std::string fresh_dir(const std::string& name) {
  // ctest runs every case as its own process against the shared TempDir;
  // the pid keeps concurrently running cases (e.g. the three crash-matrix
  // sweeps, which all start with a dry run) out of each other's state.
  const std::string dir = ::testing::TempDir() + "fast_recovery_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

FastConfig small_config(
    FastConfig::ChsBackend backend = FastConfig::ChsBackend::kFlatCuckoo) {
  FastConfig cfg;
  cfg.cuckoo.capacity = 256;
  cfg.chs_backend = backend;
  return cfg;
}

/// Deterministic synthetic signature with ~`popcount` set bits.
hash::SparseSignature make_signature(std::uint64_t seed,
                                     std::size_t bloom_bits,
                                     std::size_t popcount = 96) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<std::uint32_t> bits;
  std::uint32_t cur = 0;
  const std::uint32_t max_step =
      static_cast<std::uint32_t>(bloom_bits / (popcount + 1));
  for (std::size_t i = 0; i < popcount; ++i) {
    cur += 1 + static_cast<std::uint32_t>(rng.uniform_u64(max_step));
    if (cur >= bloom_bits) break;
    bits.push_back(cur);
  }
  return hash::SparseSignature(bits, bloom_bits);
}

/// Strict state equality: same ids with identical signatures, and identical
/// ranked results (ids AND scores) for a set of probe queries. Two indexes
/// built by the same apply sequence must pass this bit-exactly.
void expect_same_state(const FastIndex& got, const FastIndex& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.group_count(), want.group_count());
  for (std::uint64_t id = 0; id < 64; ++id) {
    const hash::SparseSignature* a = got.signature_of(id);
    const hash::SparseSignature* b = want.signature_of(id);
    ASSERT_EQ(a == nullptr, b == nullptr) << "id " << id;
    if (a != nullptr) {
      EXPECT_EQ(a->set_bits(), b->set_bits()) << "id " << id;
    }
  }
  for (std::uint64_t q = 0; q < 5; ++q) {
    const auto sig = make_signature(1000 + q, want.config().bloom_bits);
    const QueryResult ra = got.query_signature(sig, 10);
    const QueryResult rb = want.query_signature(sig, 10);
    ASSERT_EQ(ra.hits.size(), rb.hits.size()) << "query " << q;
    for (std::size_t i = 0; i < ra.hits.size(); ++i) {
      EXPECT_EQ(ra.hits[i].id, rb.hits[i].id) << "query " << q << " hit " << i;
      EXPECT_EQ(ra.hits[i].score, rb.hits[i].score)
          << "query " << q << " hit " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Directed recovery scenarios
// ---------------------------------------------------------------------------

TEST(RecoveryTest, FreshDirectoryOpensEmptyDurableIndex) {
  DurabilityOptions opts;
  opts.dir = fresh_dir("fresh");
  RecoveryStats stats;
  auto index = FastIndex::open_or_recover(small_config(), test::fake_pca(),
                                          opts, &stats);
  ASSERT_TRUE(index.ok()) << index.status().to_string();
  EXPECT_EQ(index.value().size(), 0u);
  EXPECT_TRUE(index.value().durable());
  EXPECT_EQ(index.value().last_seq(), 0u);
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.replayed_records, 0u);
}

TEST(RecoveryTest, WalReplayRestoresInsertsExactly) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("wal_replay");

  FastIndex reference(cfg, pca);
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 30; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      EXPECT_EQ(durable.insert_signature(id, sig).ok,
                reference.insert_signature(id, sig).ok);
    }
    EXPECT_EQ(durable.last_seq(), 30u);
  }

  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.replayed_records, 30u);
  EXPECT_EQ(recovered.value().last_seq(), 30u);
  expect_same_state(recovered.value(), reference);
}

TEST(RecoveryTest, SnapshotLoadNeedsNoReplay) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("snap_load");

  FastIndex reference(cfg, pca);
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 20; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    ASSERT_TRUE(durable.save_snapshot().ok());
  }

  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshot_seq, 20u);
  EXPECT_EQ(stats.replayed_records, 0u);
  expect_same_state(recovered.value(), reference);
}

TEST(RecoveryTest, SnapshotPlusWalTailReplay) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("snap_tail");

  FastIndex reference(cfg, pca);
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 12; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    ASSERT_TRUE(durable.save_snapshot().ok());
    for (std::uint64_t id = 12; id < 20; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    EXPECT_TRUE(durable.erase(3));
    EXPECT_TRUE(reference.erase(3));
    EXPECT_TRUE(durable.erase(15));
    EXPECT_TRUE(reference.erase(15));
  }

  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshot_seq, 12u);
  EXPECT_EQ(stats.replayed_records, 10u);  // 8 inserts + 2 erases
  expect_same_state(recovered.value(), reference);
}

TEST(RecoveryTest, ErasedIdIsNeverResurrected) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("erase");
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 10; ++id) {
      durable.insert_signature(id, make_signature(id, cfg.bloom_bits));
    }
    ASSERT_TRUE(durable.save_snapshot().ok());
    EXPECT_TRUE(durable.erase(4));  // erase AFTER the snapshot holds the id
    EXPECT_FALSE(durable.erase(77));  // unknown id: no-op, not logged
  }
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().signature_of(4), nullptr);
  EXPECT_EQ(recovered.value().size(), 9u);
}

TEST(RecoveryTest, ReInsertAfterEraseKeepsLatestSignature) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("reinsert");
  const auto v1 = make_signature(500, cfg.bloom_bits);
  const auto v2 = make_signature(501, cfg.bloom_bits);
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    durable.insert_signature(9, v1);
    EXPECT_TRUE(durable.erase(9));
    durable.insert_signature(9, v2);
  }
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(recovered.ok());
  ASSERT_NE(recovered.value().signature_of(9), nullptr);
  EXPECT_EQ(recovered.value().signature_of(9)->set_bits(), v2.set_bits());
}

TEST(RecoveryTest, ConfigMismatchIsHardError) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("mismatch");
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    durable.insert_signature(1, make_signature(1, cfg.bloom_bits));
    ASSERT_TRUE(durable.save_snapshot().ok());
  }
  FastConfig other = cfg;
  other.minhash.seed ^= 1;  // different SA geometry -> different groups
  auto recovered = FastIndex::open_or_recover(other, pca, opts);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), storage::StatusCode::kConfigMismatch);
}

TEST(RecoveryTest, CorruptNewestSnapshotFallsBackExactly) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("fallback");

  FastIndex reference(cfg, pca);
  std::uint64_t newest_seq = 0;
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 10; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    ASSERT_TRUE(durable.save_snapshot().ok());
    for (std::uint64_t id = 10; id < 16; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    ASSERT_TRUE(durable.save_snapshot().ok());
    newest_seq = durable.last_seq();
  }
  // Bit-rot the newest snapshot image. Retention kept the previous snapshot
  // and the WAL segments it does not cover, so recovery must reproduce the
  // exact pre-corruption state from the older generation.
  const std::string newest =
      opts.dir + "/" + storage::snapshot_file_name(newest_seq);
  {
    std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(48);
    const char x = 0x7f;
    f.write(&x, 1);
  }
  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.snapshots_skipped, 1u);
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshot_seq, 10u);
  EXPECT_EQ(stats.replayed_records, 6u);
  expect_same_state(recovered.value(), reference);
}

TEST(RecoveryTest, SnapshotRetainsExactlyOnePreviousGeneration) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("retention");
  auto opened = FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(opened.ok());
  FastIndex durable = std::move(opened).value();

  std::vector<std::uint64_t> snapshot_seqs;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      const auto id = static_cast<std::uint64_t>(round) * 4 + i;
      durable.insert_signature(id, make_signature(id, cfg.bloom_bits));
    }
    ASSERT_TRUE(durable.save_snapshot().ok());
    snapshot_seqs.push_back(durable.last_seq());
  }
  storage::Env& env = storage::Env::posix();
  // Newest + one previous generation live; the oldest is gone.
  EXPECT_TRUE(env.file_exists(
      opts.dir + "/" + storage::snapshot_file_name(snapshot_seqs[2])));
  EXPECT_TRUE(env.file_exists(
      opts.dir + "/" + storage::snapshot_file_name(snapshot_seqs[1])));
  EXPECT_FALSE(env.file_exists(
      opts.dir + "/" + storage::snapshot_file_name(snapshot_seqs[0])));
}

TEST(RecoveryTest, TornWalTailIsTruncatedNotFatal) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("torn_tail");
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 5; ++id) {
      durable.insert_signature(id, make_signature(id, cfg.bloom_bits));
    }
  }
  // Tear the last frame, as a crash mid-append would.
  const std::string segment = opts.dir + "/" + storage::wal_segment_name(1);
  const auto full = std::filesystem::file_size(segment);
  std::filesystem::resize_file(segment, full - 7);

  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.wal_torn);
  EXPECT_EQ(recovered.value().size(), 4u);
  EXPECT_EQ(recovered.value().last_seq(), 4u);
  EXPECT_NE(recovered.value().signature_of(3), nullptr);
  EXPECT_EQ(recovered.value().signature_of(4), nullptr);
}

TEST(RecoveryTest, StrayFilesInDirectoryAreIgnored) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("stray");
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    durable.insert_signature(1, make_signature(1, cfg.bloom_bits));
  }
  // A crashed snapshot writer leaves a .tmp; users leave READMEs.
  for (const char* name : {"snapshot-00000000000000000099.fast.tmp",
                           "README.txt", "wal-backup.old"}) {
    std::ofstream out(opts.dir + "/" + name, std::ios::binary);
    out << "junk";
  }
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().size(), 1u);
}

TEST(RecoveryTest, WalMetricsAccumulate) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("metrics");
  auto opened = FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(opened.ok());
  FastIndex durable = std::move(opened).value();
  for (std::uint64_t id = 0; id < 3; ++id) {
    durable.insert_signature(id, make_signature(id, cfg.bloom_bits));
  }
  const auto snap = durable.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("wal.appends"), 3u);
  EXPECT_EQ(snap.counters.at("wal.syncs"), 3u);  // wal_sync_every = 1
  EXPECT_GT(snap.counters.at("wal.bytes"), 0u);
}

TEST(RecoveryTest, GroupSyncedWalAcksInBatches) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("group_sync");
  opts.wal_sync_every = 4;
  auto opened = FastIndex::open_or_recover(cfg, pca, opts);
  ASSERT_TRUE(opened.ok());
  FastIndex durable = std::move(opened).value();
  for (std::uint64_t id = 0; id < 8; ++id) {
    durable.insert_signature(id, make_signature(id, cfg.bloom_bits));
  }
  const auto snap = durable.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("wal.appends"), 8u);
  EXPECT_EQ(snap.counters.at("wal.syncs"), 2u);
}

// ---------------------------------------------------------------------------
// Crash matrix
// ---------------------------------------------------------------------------

// The scripted workload's logged mutations, in order. Keeping the script in
// data form lets the checker re-apply exactly the acknowledged prefix (plus
// at most the one in-flight record) to a reference index.
struct ScriptOp {
  bool is_erase = false;
  std::uint64_t id = 0;
  std::uint64_t sig_seed = 0;  // inserts only
};

std::vector<ScriptOp> crash_script() {
  std::vector<ScriptOp> ops;
  for (std::uint64_t id = 0; id < 10; ++id) ops.push_back({false, id, id});
  // (snapshot happens after op 9; see run_workload)
  for (std::uint64_t id = 10; id < 18; ++id) ops.push_back({false, id, id});
  ops.push_back({true, 3, 0});
  ops.push_back({true, 7, 0});
  ops.push_back({true, 12, 0});
  // (snapshot happens after op 20)
  for (std::uint64_t id = 18; id < 23; ++id) ops.push_back({false, id, id});
  ops.push_back({true, 15, 0});
  ops.push_back({false, 12, 912});  // re-insert an erased id, new signature
  return ops;
}

/// Snapshot points, expressed as "after N logged mutations".
constexpr std::size_t kSnapshotAfter[] = {10, 21};

void apply_script_op(FastIndex& index, const ScriptOp& op) {
  if (op.is_erase) {
    index.erase(op.id);
  } else {
    index.insert_signature(
        op.id, make_signature(op.sig_seed, index.config().bloom_bits));
  }
}

/// Runs the scripted workload against `dir` under `env` until the first
/// failure (the planned crash) or completion. Returns the number of
/// mutations that were ACKNOWLEDGED (returned without an I/O error).
std::size_t run_workload(storage::Env& env, const std::string& dir,
                         const FastConfig& cfg, const vision::PcaModel& pca) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = &env;
  auto opened = FastIndex::open_or_recover(cfg, pca, opts);
  if (!opened.ok()) return 0;  // crashed during open: nothing acked
  FastIndex index = std::move(opened).value();

  const std::vector<ScriptOp> script = crash_script();
  std::size_t acked = 0;
  for (std::size_t i = 0; i < script.size(); ++i) {
    try {
      apply_script_op(index, script[i]);
    } catch (const storage::IoError&) {
      return acked;  // process died mid-mutation
    }
    ++acked;
    for (const std::size_t at : kSnapshotAfter) {
      if (acked == at && !index.save_snapshot().ok()) {
        return acked;  // crash inside the snapshot/rotation path
      }
    }
  }
  return acked;
}

/// Recovers `dir` with a clean env and checks the crash invariants against
/// `acked` acknowledged mutations.
void check_recovery(const std::string& dir, const FastConfig& cfg,
                    const vision::PcaModel& pca, std::size_t acked,
                    const std::string& label) {
  DurabilityOptions opts;
  opts.dir = dir;
  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok())
      << label << ": recovery failed: " << recovered.status().to_string();

  const std::vector<ScriptOp> script = crash_script();
  const std::uint64_t got_seq = recovered.value().last_seq();
  // Every acknowledged record must survive; at most the one in-flight
  // mutation (whose bytes may have fully landed before the crash) may
  // additionally appear.
  ASSERT_GE(got_seq, acked) << label << ": acknowledged records lost";
  ASSERT_LE(got_seq, acked + 1) << label << ": phantom records appeared";
  ASSERT_LE(got_seq, script.size()) << label;

  FastIndex reference(cfg, pca);
  for (std::size_t i = 0; i < got_seq; ++i) {
    apply_script_op(reference, script[i]);
  }
  expect_same_state(recovered.value(), reference);
}

class CrashMatrixTest
    : public ::testing::TestWithParam<storage::FaultPlan::Kind> {};

TEST_P(CrashMatrixTest, NoAckedRecordLostAtAnyFailurePoint) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();

  // Dry run: count the workload's mutating I/O ops to size the sweep.
  const std::string dry = fresh_dir("matrix_dry");
  storage::FaultInjectingEnv counter(storage::Env::posix(), {});
  const std::size_t clean_acked =
      run_workload(counter, dry, cfg, pca);
  const std::size_t total_ops = counter.ops_attempted();
  ASSERT_EQ(clean_acked, crash_script().size());
  // The issue's floor: the matrix must cover at least 50 failure points.
  ASSERT_GE(total_ops, 50u);

  const storage::FaultPlan::Kind kind = GetParam();
  for (std::size_t fail_at = 0; fail_at < total_ops; ++fail_at) {
    const std::string label =
        "kind=" + std::to_string(static_cast<int>(kind)) +
        " fail_at=" + std::to_string(fail_at);
    const std::string dir =
        fresh_dir("matrix_" + std::to_string(static_cast<int>(kind)) + "_" +
                  std::to_string(fail_at));
    storage::FaultPlan plan;
    plan.kind = kind;
    plan.fail_at_op = fail_at;
    plan.seed = 0xc0ffee ^ fail_at;
    storage::FaultInjectingEnv env(storage::Env::posix(), plan);
    const std::size_t acked = run_workload(env, dir, cfg, pca);
    EXPECT_TRUE(env.crashed()) << label;
    ASSERT_NO_FATAL_FAILURE(check_recovery(dir, cfg, pca, acked, label));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashMatrixTest,
    ::testing::Values(storage::FaultPlan::Kind::kFail,
                      storage::FaultPlan::Kind::kShortWrite,
                      storage::FaultPlan::Kind::kTornWrite));

// ---------------------------------------------------------------------------
// Fingerprint-compressed backend durability
// ---------------------------------------------------------------------------

// Snapshot + WAL-tail round trip with the compact store section: the
// recovered index must be bit-identical to a reference that applied the
// same mutations in-memory.
TEST(RecoveryTest, CompactBackendRoundTripsSnapshotAndWal) {
  const FastConfig cfg =
      small_config(FastConfig::ChsBackend::kCompactFlatCuckoo);
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("compact_roundtrip");

  FastIndex reference(cfg, pca);
  {
    auto opened = FastIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 24; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    ASSERT_TRUE(durable.erase(5));
    ASSERT_TRUE(reference.erase(5));
    ASSERT_TRUE(durable.save_snapshot().ok());
    // WAL tail past the snapshot, including a re-insert of the erased id.
    for (std::uint64_t id : {5ULL, 30ULL, 31ULL}) {
      const auto sig = make_signature(100 + id, cfg.bloom_bits);
      durable.insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
  }
  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_GT(stats.replayed_records, 0u);
  expect_same_state(recovered.value(), reference);
}

// A directory written by one cuckoo backend must be rejected by the other
// as a config mismatch — a typed, recoverable error, never parsed as the
// wrong section format (which would surface as corruption).
TEST(RecoveryTest, FlatCompactDirectoryMismatchIsConfigError) {
  const vision::PcaModel pca = test::fake_pca();
  const auto backends = {FastConfig::ChsBackend::kFlatCuckoo,
                         FastConfig::ChsBackend::kCompactFlatCuckoo};
  int dir_no = 0;
  for (const auto writer : backends) {
    for (const auto reader : backends) {
      if (writer == reader) continue;
      const FastConfig wcfg = small_config(writer);
      DurabilityOptions opts;
      opts.dir = fresh_dir("backend_mismatch_" + std::to_string(dir_no++));
      {
        auto opened = FastIndex::open_or_recover(wcfg, pca, opts);
        ASSERT_TRUE(opened.ok());
        FastIndex durable = std::move(opened).value();
        durable.insert_signature(1, make_signature(1, wcfg.bloom_bits));
        ASSERT_TRUE(durable.save_snapshot().ok());
      }
      const FastConfig rcfg = small_config(reader);
      auto recovered = FastIndex::open_or_recover(rcfg, pca, opts);
      ASSERT_FALSE(recovered.ok());
      EXPECT_EQ(recovered.status().code(),
                storage::StatusCode::kConfigMismatch);
    }
  }
}

// Crash-matrix subset with the compact backend: torn writes are the
// nastiest plan (partial bytes of a record land), and the compact store
// section must recover every acknowledged mutation exactly like flat does.
// A strided subset keeps the sweep cheap; the full matrix runs on flat.
TEST(CrashMatrixCompact, TornWriteSubsetRecoversExactly) {
  const FastConfig cfg =
      small_config(FastConfig::ChsBackend::kCompactFlatCuckoo);
  const vision::PcaModel pca = test::fake_pca();

  const std::string dry = fresh_dir("compact_matrix_dry");
  storage::FaultInjectingEnv counter(storage::Env::posix(), {});
  const std::size_t clean_acked = run_workload(counter, dry, cfg, pca);
  const std::size_t total_ops = counter.ops_attempted();
  ASSERT_EQ(clean_acked, crash_script().size());

  for (std::size_t fail_at = 0; fail_at < total_ops; fail_at += 4) {
    const std::string label = "compact torn fail_at=" + std::to_string(fail_at);
    const std::string dir =
        fresh_dir("compact_matrix_" + std::to_string(fail_at));
    storage::FaultPlan plan;
    plan.kind = storage::FaultPlan::Kind::kTornWrite;
    plan.fail_at_op = fail_at;
    plan.seed = 0xc0ffee ^ fail_at;
    storage::FaultInjectingEnv env(storage::Env::posix(), plan);
    const std::size_t acked = run_workload(env, dir, cfg, pca);
    EXPECT_TRUE(env.crashed()) << label;
    ASSERT_NO_FATAL_FAILURE(check_recovery(dir, cfg, pca, acked, label));
  }
}

// ---------------------------------------------------------------------------
// Tiered recovery (memtable lanes + sealed segments + tombstones)
// ---------------------------------------------------------------------------

/// Tiny tier thresholds so the crash scripts cross seal and compaction
/// boundaries; background off keeps replay-time merges deterministic.
FastConfig tiered_config() {
  FastConfig cfg = small_config();
  cfg.tier.enabled = true;
  cfg.tier.seal_threshold = 4;
  cfg.tier.lanes = 2;
  cfg.tier.compact_fanin = 2;
  cfg.tier.compact_trigger = 2;
  cfg.tier.background = false;
  return cfg;
}

/// Layout-independent state equality for tiered indexes: recovery may land
/// ids in different segments than the pre-crash process (replay re-seals,
/// compaction re-runs), so we compare the LIVE SET and query behavior, not
/// the physical layout.
void expect_same_tier_state(const TieredIndex& got, const TieredIndex& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::uint64_t id = 0; id < 64; ++id) {
    const auto a = got.find_signature(id);
    const auto b = want.find_signature(id);
    ASSERT_EQ(a.has_value(), b.has_value()) << "id " << id;
    if (a.has_value()) {
      EXPECT_EQ(a->set_bits(), b->set_bits()) << "id " << id;
    }
  }
  for (std::uint64_t q = 0; q < 5; ++q) {
    const auto sig = make_signature(1000 + q, want.config().bloom_bits);
    const QueryResult ra = got.query_signature(sig, 10);
    const QueryResult rb = want.query_signature(sig, 10);
    ASSERT_EQ(ra.hits.size(), rb.hits.size()) << "query " << q;
    for (std::size_t i = 0; i < ra.hits.size(); ++i) {
      EXPECT_EQ(ra.hits[i].id, rb.hits[i].id) << "query " << q << " hit " << i;
      EXPECT_EQ(ra.hits[i].score, rb.hits[i].score)
          << "query " << q << " hit " << i;
    }
  }
}

void apply_tiered_op(TieredIndex& index, const ScriptOp& op) {
  if (op.is_erase) {
    index.erase(op.id);
  } else {
    index.insert_signature(
        op.id, make_signature(op.sig_seed, index.config().bloom_bits));
  }
}

/// Interleaved insert/erase churn sized to cross several seal thresholds
/// (4 mentions per lane): erases of sealed ids become tombstones, a sealed
/// tombstone later compacts away, and an erased id is re-inserted. Every
/// erase targets a live id so each op is logged (op index == WAL seq).
std::vector<ScriptOp> tiered_crash_script() {
  std::vector<ScriptOp> ops;
  for (std::uint64_t id = 0; id < 12; ++id) ops.push_back({false, id, id});
  ops.push_back({true, 1, 0});   // likely sealed by now -> tombstone
  ops.push_back({true, 6, 0});
  // (snapshot happens after op 14; see run_tiered_workload)
  for (std::uint64_t id = 12; id < 18; ++id) ops.push_back({false, id, id});
  ops.push_back({true, 14, 0});  // memtable-resident erase
  ops.push_back({true, 3, 0});
  ops.push_back({false, 6, 906});   // re-insert over a tombstone
  // (snapshot happens after op 23)
  for (std::uint64_t id = 18; id < 24; ++id) ops.push_back({false, id, id});
  ops.push_back({true, 0, 0});
  ops.push_back({false, 1, 901});   // resurrect the first erase, new content
  return ops;
}

constexpr std::size_t kTieredSnapshotAfter[] = {14, 23};

std::size_t run_tiered_workload(storage::Env& env, const std::string& dir,
                                const FastConfig& cfg,
                                const vision::PcaModel& pca) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = &env;
  auto opened = TieredIndex::open_or_recover(cfg, pca, opts);
  if (!opened.ok()) return 0;
  std::unique_ptr<TieredIndex> index = std::move(opened).value();

  const std::vector<ScriptOp> script = tiered_crash_script();
  std::size_t acked = 0;
  for (std::size_t i = 0; i < script.size(); ++i) {
    try {
      apply_tiered_op(*index, script[i]);
    } catch (const storage::IoError&) {
      return acked;
    }
    ++acked;
    for (const std::size_t at : kTieredSnapshotAfter) {
      if (acked == at && !index->save_snapshot().ok()) {
        return acked;
      }
    }
  }
  return acked;
}

void check_tiered_recovery(const std::string& dir, const FastConfig& cfg,
                           const vision::PcaModel& pca, std::size_t acked,
                           const std::string& label) {
  DurabilityOptions opts;
  opts.dir = dir;
  RecoveryStats stats;
  auto recovered = TieredIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok())
      << label << ": recovery failed: " << recovered.status().to_string();

  const std::vector<ScriptOp> script = tiered_crash_script();
  const std::uint64_t got_seq = recovered.value()->last_seq();
  ASSERT_GE(got_seq, acked) << label << ": acknowledged records lost";
  ASSERT_LE(got_seq, acked + 1) << label << ": phantom records appeared";
  ASSERT_LE(got_seq, script.size()) << label;

  TieredIndex reference(cfg, pca);
  for (std::size_t i = 0; i < got_seq; ++i) {
    apply_tiered_op(reference, script[i]);
  }
  expect_same_tier_state(*recovered.value(), reference);
}

TEST(TieredRecoveryTest, WalReplayRestoresTierExactly) {
  const FastConfig cfg = tiered_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("tier_wal_replay");

  TieredIndex reference(cfg, pca);
  {
    auto opened = TieredIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok()) << opened.status().to_string();
    auto durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 20; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable->insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    EXPECT_TRUE(durable->erase(2));
    EXPECT_TRUE(reference.erase(2));
    EXPECT_TRUE(durable->erase(17));
    EXPECT_TRUE(reference.erase(17));
    EXPECT_FALSE(durable->erase(99));  // unknown: not logged
    EXPECT_EQ(durable->last_seq(), 22u);
    EXPECT_GE(durable->segment_count(), 1u);
  }

  RecoveryStats stats;
  auto recovered = TieredIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.replayed_records, 22u);
  EXPECT_EQ(recovered.value()->last_seq(), 22u);
  // Replay re-fires the same seals, so even the layout matches a fresh run.
  EXPECT_EQ(recovered.value()->segment_count(), reference.segment_count());
  expect_same_tier_state(*recovered.value(), reference);
}

TEST(TieredRecoveryTest, SnapshotRoundTripPreservesSegmentsAndTombstones) {
  const FastConfig cfg = tiered_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("tier_snapshot");

  TieredIndex reference(cfg, pca);
  std::size_t segments_before = 0;
  std::size_t tombstones_before = 0;
  {
    auto opened = TieredIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    auto durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 16; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable->insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    EXPECT_TRUE(durable->erase(1));
    EXPECT_TRUE(reference.erase(1));
    segments_before = durable->segment_count();
    tombstones_before = durable->tombstone_count();
    ASSERT_GE(segments_before, 1u);
    ASSERT_TRUE(durable->save_snapshot().ok());
  }

  RecoveryStats stats;
  auto recovered = TieredIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.replayed_records, 0u);
  // The manifest restores the exact tier layout, not just the live set.
  EXPECT_EQ(recovered.value()->segment_count(), segments_before);
  EXPECT_EQ(recovered.value()->tombstone_count(), tombstones_before);
  expect_same_tier_state(*recovered.value(), reference);

  // And the restored tier keeps working: mutations and seals continue.
  recovered.value()->insert_signature(40, make_signature(40, cfg.bloom_bits));
  EXPECT_TRUE(recovered.value()->find_signature(40).has_value());
}

TEST(TieredRecoveryTest, SnapshotPlusChurnTailReplay) {
  const FastConfig cfg = tiered_config();
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("tier_snap_tail");

  TieredIndex reference(cfg, pca);
  {
    auto opened = TieredIndex::open_or_recover(cfg, pca, opts);
    ASSERT_TRUE(opened.ok());
    auto durable = std::move(opened).value();
    for (std::uint64_t id = 0; id < 10; ++id) {
      const auto sig = make_signature(id, cfg.bloom_bits);
      durable->insert_signature(id, sig);
      reference.insert_signature(id, sig);
    }
    ASSERT_TRUE(durable->save_snapshot().ok());
    // Churn tail: erase sealed ids, re-insert one with new content.
    EXPECT_TRUE(durable->erase(4));
    EXPECT_TRUE(reference.erase(4));
    EXPECT_TRUE(durable->erase(7));
    EXPECT_TRUE(reference.erase(7));
    const auto fresh = make_signature(704, cfg.bloom_bits);
    durable->insert_signature(7, fresh);
    reference.insert_signature(7, fresh);
  }

  RecoveryStats stats;
  auto recovered = TieredIndex::open_or_recover(cfg, pca, opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshot_seq, 10u);
  EXPECT_EQ(stats.replayed_records, 3u);
  EXPECT_FALSE(recovered.value()->find_signature(4).has_value());
  ASSERT_TRUE(recovered.value()->find_signature(7).has_value());
  expect_same_tier_state(*recovered.value(), reference);
}

TEST(TieredRecoveryTest, FlatDirectoryRejectedByTieredConfig) {
  const vision::PcaModel pca = test::fake_pca();
  DurabilityOptions opts;
  opts.dir = fresh_dir("tier_mismatch");
  {
    auto opened = FastIndex::open_or_recover(small_config(), pca, opts);
    ASSERT_TRUE(opened.ok());
    FastIndex durable = std::move(opened).value();
    durable.insert_signature(1, make_signature(1, durable.config().bloom_bits));
    ASSERT_TRUE(durable.save_snapshot().ok());
  }
  // tier.enabled feeds the config fingerprint: a flat directory must not
  // be silently reinterpreted as a tiered one.
  auto recovered = TieredIndex::open_or_recover(tiered_config(), pca, opts);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), storage::StatusCode::kConfigMismatch);
}

class TieredCrashMatrixTest
    : public ::testing::TestWithParam<storage::FaultPlan::Kind> {};

TEST_P(TieredCrashMatrixTest, ChurnSurvivesAnyFailurePoint) {
  const FastConfig cfg = tiered_config();
  const vision::PcaModel pca = test::fake_pca();

  const std::string dry = fresh_dir("tier_matrix_dry");
  storage::FaultInjectingEnv counter(storage::Env::posix(), {});
  const std::size_t clean_acked = run_tiered_workload(counter, dry, cfg, pca);
  const std::size_t total_ops = counter.ops_attempted();
  ASSERT_EQ(clean_acked, tiered_crash_script().size());
  ASSERT_GE(total_ops, 50u);

  const storage::FaultPlan::Kind kind = GetParam();
  for (std::size_t fail_at = 0; fail_at < total_ops; ++fail_at) {
    const std::string label =
        "tiered kind=" + std::to_string(static_cast<int>(kind)) +
        " fail_at=" + std::to_string(fail_at);
    const std::string dir =
        fresh_dir("tier_matrix_" + std::to_string(static_cast<int>(kind)) +
                  "_" + std::to_string(fail_at));
    storage::FaultPlan plan;
    plan.kind = kind;
    plan.fail_at_op = fail_at;
    plan.seed = 0xbeef ^ fail_at;
    storage::FaultInjectingEnv env(storage::Env::posix(), plan);
    const std::size_t acked = run_tiered_workload(env, dir, cfg, pca);
    EXPECT_TRUE(env.crashed()) << label;
    ASSERT_NO_FATAL_FAILURE(
        check_tiered_recovery(dir, cfg, pca, acked, label));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TieredCrashMatrixTest,
    ::testing::Values(storage::FaultPlan::Kind::kFail,
                      storage::FaultPlan::Kind::kShortWrite,
                      storage::FaultPlan::Kind::kTornWrite));

// ---------------------------------------------------------------------------
// Golden v1 fixture
// ---------------------------------------------------------------------------

/// Copies the checked-in fixture to a scratch directory (recovery rotates
/// the WAL, which must never dirty the repository copy).
std::string golden_copy(const std::string& name) {
  const std::string src = std::string(FAST_TEST_DATA_DIR) + "/golden_v1";
  const std::string dst = fresh_dir("golden_" + name);
  std::filesystem::copy(src, dst,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);
  return dst;
}

TEST(RecoveryGoldenTest, V1FixtureRecoversExactly) {
  DurabilityOptions opts;
  opts.dir = golden_copy("exact");
  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(test::golden_config(),
                                              test::fake_pca(), opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshot_seq, 13u);
  EXPECT_EQ(stats.replayed_records, 3u);
  EXPECT_EQ(stats.snapshots_skipped, 0u);
  EXPECT_EQ(recovered.value().last_seq(), 16u);

  // The fixture bytes must decode to the same state today's code produces
  // for the same workload — any format drift breaks one side or the other.
  FastIndex reference(test::golden_config(), test::fake_pca());
  for (std::uint64_t id = 0; id < 12; ++id) {
    reference.insert_signature(
        id, test::golden_signature(id, reference.config().bloom_bits));
  }
  reference.erase(2);
  reference.insert_signature(
      12, test::golden_signature(12, reference.config().bloom_bits));
  reference.insert_signature(
      13, test::golden_signature(13, reference.config().bloom_bits));
  reference.erase(5);
  expect_same_state(recovered.value(), reference);

  for (const std::uint64_t id : test::golden_present_ids()) {
    EXPECT_NE(recovered.value().signature_of(id), nullptr) << "id " << id;
  }
  EXPECT_EQ(recovered.value().signature_of(2), nullptr);
  EXPECT_EQ(recovered.value().signature_of(5), nullptr);
}

TEST(RecoveryGoldenTest, CorruptedFixtureSnapshotFallsBackToFullReplay) {
  DurabilityOptions opts;
  opts.dir = golden_copy("corrupt");
  // Bit-rot the snapshot. The fixture retains the full WAL history (the
  // first snapshot deletes no segments), so recovery degrades to an empty
  // base plus a complete replay — same final state, one skipped snapshot.
  const std::string snapshot =
      opts.dir + "/" + storage::snapshot_file_name(13);
  ASSERT_TRUE(std::filesystem::exists(snapshot));
  {
    std::fstream f(snapshot, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(50);
    const char x = 0x2a;
    f.write(&x, 1);
  }
  RecoveryStats stats;
  auto recovered = FastIndex::open_or_recover(test::golden_config(),
                                              test::fake_pca(), opts, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.snapshots_skipped, 1u);
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.replayed_records, 16u);
  EXPECT_EQ(recovered.value().last_seq(), 16u);
  for (const std::uint64_t id : test::golden_present_ids()) {
    EXPECT_NE(recovered.value().signature_of(id), nullptr) << "id " << id;
  }
  EXPECT_EQ(recovered.value().size(), test::golden_present_ids().size());
}

TEST(RecoveryGoldenTest, FixtureRejectsMismatchedGeometry) {
  DurabilityOptions opts;
  opts.dir = golden_copy("geometry");
  FastConfig other = test::golden_config();
  other.cuckoo.seed ^= 0x1;
  auto recovered =
      FastIndex::open_or_recover(other, test::fake_pca(), opts);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), storage::StatusCode::kConfigMismatch);
}

/// A second crash during RECOVERY itself (before the new WAL header lands)
/// must leave the directory recoverable: recovery is read-only until the
/// rotation point, so it is idempotent.
TEST(CrashMatrixTest_RecoveryCrash, CrashDuringRecoveryIsIdempotent) {
  const FastConfig cfg = small_config();
  const vision::PcaModel pca = test::fake_pca();
  const std::string dir = fresh_dir("recovery_crash");

  // Build a directory with a snapshot and a WAL tail.
  std::size_t acked = 0;
  {
    storage::FaultInjectingEnv env(storage::Env::posix(), {});
    acked = run_workload(env, dir, cfg, pca);
  }
  ASSERT_EQ(acked, crash_script().size());

  // Crash the reopen at each of its first ops (the new segment header
  // append/sync), then verify a clean recovery still succeeds.
  for (std::size_t fail_at = 0; fail_at < 2; ++fail_at) {
    storage::FaultPlan plan;
    plan.kind = storage::FaultPlan::Kind::kTornWrite;
    plan.fail_at_op = fail_at;
    plan.seed = 42 + fail_at;
    storage::FaultInjectingEnv env(storage::Env::posix(), plan);
    DurabilityOptions opts;
    opts.dir = dir;
    opts.env = &env;
    auto attempt = FastIndex::open_or_recover(cfg, pca, opts);
    EXPECT_FALSE(attempt.ok()) << "fail_at=" << fail_at;
    ASSERT_NO_FATAL_FAILURE(
        check_recovery(dir, cfg, pca, acked,
                       "post-recovery-crash fail_at=" +
                           std::to_string(fail_at)));
  }
}

}  // namespace
}  // namespace fast::core
