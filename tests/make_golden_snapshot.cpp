// Regenerates the golden-v1 persistence fixture (tests/data/golden_v1).
//
//   make_golden_snapshot <output-dir>
//
// Run this ONLY for a deliberate snapshot/WAL format-version bump, and
// update the golden assertions in recovery_test.cpp alongside it.
#include <cstdio>
#include <filesystem>
#include <string>

#include "golden_fixture.hpp"
#include "test_helpers.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  std::filesystem::remove_all(dir);

  fast::core::DurabilityOptions opts;
  opts.dir = dir;
  auto opened = fast::core::FastIndex::open_or_recover(
      fast::test::golden_config(), fast::test::fake_pca(), opts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().to_string().c_str());
    return 1;
  }
  fast::core::FastIndex index = std::move(opened).value();
  fast::test::apply_golden_workload(index);
  std::printf("golden fixture written to %s (last_seq=%llu, size=%zu)\n",
              dir.c_str(),
              static_cast<unsigned long long>(index.last_seq()),
              index.size());
  return 0;
}
