#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "index/kd_tree.hpp"
#include "index/linear_scan.hpp"
#include "index/r_tree.hpp"
#include "util/rng.hpp"

namespace fast::index {
namespace {

std::vector<std::vector<float>> random_points(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> points(n);
  for (auto& p : points) {
    p.resize(dim);
    for (auto& x : p) x = static_cast<float>(rng.uniform(-10, 10));
  }
  return points;
}

// ---------- LinearScan ----------

TEST(LinearScan, NearestOrdersByDistance) {
  LinearScan scan;
  scan.add(1, {0, 0});
  scan.add(2, {1, 0});
  scan.add(3, {5, 0});
  const std::vector<float> q{0.4f, 0};
  const auto nn = scan.nearest(q, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 1u);
  EXPECT_EQ(nn[1].id, 2u);
  EXPECT_EQ(nn[2].id, 3u);
  EXPECT_NEAR(nn[0].distance, 0.4, 1e-6);
}

TEST(LinearScan, KLargerThanSize) {
  LinearScan scan;
  scan.add(1, {0.f});
  const auto nn = scan.nearest(std::vector<float>{1.f}, 10);
  EXPECT_EQ(nn.size(), 1u);
}

TEST(LinearScan, WithinRadius) {
  LinearScan scan;
  scan.add(1, {0, 0});
  scan.add(2, {3, 4});
  scan.add(3, {10, 0});
  const auto hits = scan.within(std::vector<float>{0.f, 0.f}, 6.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 2u);
}

// ---------- KdTree ----------

TEST(KdTree, EmptyTree) {
  KdTree tree({}, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.nearest(std::vector<float>{}, 3).empty());
}

TEST(KdTree, SinglePoint) {
  KdTree tree({7}, {{1.f, 2.f}});
  const auto nn = tree.nearest(std::vector<float>{0.f, 0.f}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 7u);
  EXPECT_NEAR(nn[0].distance, std::sqrt(5.0), 1e-6);
}

TEST(KdTree, NearestMatchesLinearScan) {
  const auto points = random_points(500, 4, 1);
  std::vector<std::uint64_t> ids(points.size());
  LinearScan scan;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ids[i] = i;
    scan.add(i, points[i]);
  }
  KdTree tree(ids, points);
  util::Rng rng(2);
  for (int q = 0; q < 50; ++q) {
    std::vector<float> query(4);
    for (auto& x : query) x = static_cast<float>(rng.uniform(-10, 10));
    const auto kd = tree.nearest(query, 5);
    const auto ls = scan.nearest(query, 5);
    ASSERT_EQ(kd.size(), ls.size());
    for (std::size_t i = 0; i < kd.size(); ++i) {
      EXPECT_EQ(kd[i].id, ls[i].id) << "query " << q << " rank " << i;
      EXPECT_NEAR(kd[i].distance, ls[i].distance, 1e-5);
    }
  }
}

TEST(KdTree, WithinMatchesLinearScan) {
  const auto points = random_points(300, 3, 3);
  std::vector<std::uint64_t> ids(points.size());
  LinearScan scan;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ids[i] = i;
    scan.add(i, points[i]);
  }
  KdTree tree(ids, points);
  util::Rng rng(4);
  for (int q = 0; q < 20; ++q) {
    std::vector<float> query(3);
    for (auto& x : query) x = static_cast<float>(rng.uniform(-10, 10));
    const auto kd = tree.within(query, 4.0);
    const auto ls = scan.within(query, 4.0);
    ASSERT_EQ(kd.size(), ls.size());
    for (std::size_t i = 0; i < kd.size(); ++i) {
      EXPECT_EQ(kd[i].id, ls[i].id);
    }
  }
}

TEST(KdTree, PrunesNodes) {
  // Branch-and-bound must visit far fewer nodes than the full tree for a
  // clustered query.
  const auto points = random_points(2000, 3, 5);
  std::vector<std::uint64_t> ids(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) ids[i] = i;
  KdTree tree(ids, points);
  std::size_t visited = 0;
  tree.nearest(points[42], 1, &visited);
  EXPECT_LT(visited, 2000u);
  EXPECT_GT(visited, 0u);
}

TEST(KdTree, DuplicatePointsAllFound) {
  std::vector<std::vector<float>> points(5, {1.f, 1.f});
  KdTree tree({0, 1, 2, 3, 4}, points);
  const auto nn = tree.nearest(std::vector<float>{1.f, 1.f}, 5);
  std::set<std::uint64_t> got;
  for (const auto& n : nn) got.insert(n.id);
  EXPECT_EQ(got.size(), 5u);
}

// ---------- RTree ----------

TEST(RTree, RectGeometry) {
  const Rect r{0, 0, 10, 5};
  EXPECT_EQ(r.area(), 50.0);
  EXPECT_TRUE(r.contains_point(5, 2));
  EXPECT_FALSE(r.contains_point(11, 2));
  EXPECT_TRUE(r.intersects(Rect{9, 4, 20, 20}));
  EXPECT_FALSE(r.intersects(Rect{11, 6, 20, 20}));
  EXPECT_EQ(r.min_dist_sq(5, 2), 0.0);
  EXPECT_EQ(r.min_dist_sq(13, 9), 9.0 + 16.0);
}

TEST(RTree, RectExpansion) {
  const Rect a{0, 0, 1, 1};
  const Rect b{2, 2, 3, 3};
  const Rect e = a.expanded(b);
  EXPECT_EQ(e.min_x, 0);
  EXPECT_EQ(e.max_x, 3);
  EXPECT_EQ(a.enlargement(b), 9.0 - 1.0);
}

TEST(RTree, InsertAndRangeSmall) {
  RTree tree(4);
  tree.insert(1, 1, 1);
  tree.insert(2, 5, 5);
  tree.insert(3, 9, 9);
  const auto hits = tree.range(Rect{0, 0, 6, 6});
  EXPECT_EQ(hits.size(), 2u);
}

TEST(RTree, RangeMatchesBruteForceAfterSplits) {
  util::Rng rng(6);
  RTree tree(6);
  std::vector<std::pair<double, double>> points;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    const double y = rng.uniform(0, 100);
    tree.insert(i, x, y);
    points.emplace_back(x, y);
  }
  EXPECT_EQ(tree.size(), 500u);
  for (int q = 0; q < 25; ++q) {
    const double x0 = rng.uniform(0, 80), y0 = rng.uniform(0, 80);
    const Rect query{x0, y0, x0 + 20, y0 + 20};
    auto hits = tree.range(query);
    std::sort(hits.begin(), hits.end());
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < points.size(); ++i) {
      if (query.contains_point(points[i].first, points[i].second)) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(hits, expected) << "query " << q;
  }
}

TEST(RTree, NearestMatchesBruteForce) {
  util::Rng rng(8);
  RTree tree(8);
  std::vector<std::pair<double, double>> points;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const double x = rng.uniform(0, 100);
    const double y = rng.uniform(0, 100);
    tree.insert(i, x, y);
    points.emplace_back(x, y);
  }
  for (int q = 0; q < 20; ++q) {
    const double qx = rng.uniform(0, 100), qy = rng.uniform(0, 100);
    const auto knn = tree.nearest(qx, qy, 5);
    ASSERT_EQ(knn.size(), 5u);
    // Brute force.
    std::vector<std::pair<double, std::uint64_t>> bf;
    for (std::uint64_t i = 0; i < points.size(); ++i) {
      const double dx = points[i].first - qx, dy = points[i].second - qy;
      bf.emplace_back(std::sqrt(dx * dx + dy * dy), i);
    }
    std::sort(bf.begin(), bf.end());
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(knn[i].distance, bf[i].first, 1e-9) << "rank " << i;
    }
  }
}

TEST(RTree, NearestOrdered) {
  RTree tree(4);
  for (std::uint64_t i = 0; i < 50; ++i) {
    tree.insert(i, static_cast<double>(i), 0);
  }
  const auto knn = tree.nearest(25.2, 0, 4);
  ASSERT_EQ(knn.size(), 4u);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_GE(knn[i].distance, knn[i - 1].distance);
  }
  EXPECT_EQ(knn[0].id, 25u);
}

TEST(RTree, HeightGrowsLogarithmically) {
  RTree tree(8);
  util::Rng rng(10);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    tree.insert(i, rng.uniform(0, 1000), rng.uniform(0, 1000));
  }
  // 1000 points with fan-out >= 4 must fit in height <= 6.
  EXPECT_LE(tree.height(), 6u);
  EXPECT_GE(tree.height(), 2u);
}

TEST(RTree, AccessCountReported) {
  RTree tree(4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    tree.insert(i, static_cast<double>(i % 10), static_cast<double>(i / 10));
  }
  std::size_t accesses = 0;
  tree.range(Rect{0, 0, 2, 2}, &accesses);
  EXPECT_GT(accesses, 0u);
  EXPECT_LT(accesses, tree.node_count() + 1);
}

}  // namespace
}  // namespace fast::index
