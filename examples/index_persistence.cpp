// Index lifecycle as a deployed middleware would drive it: build an index
// over today's uploads, persist it, restart (load), serve queries from the
// restored instance, and expire old photos with erase().
//
// Run: ./build/examples/index_persistence [num_photos]
#include <cstdio>
#include <cstdlib>

#include "core/fast_index.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vision/pca_sift.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_generator.hpp"

int main(int argc, char** argv) {
  using namespace fast;
  const std::size_t num_photos =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;
  const std::string path = "fast_index_snapshot.bin";

  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(num_photos);
  const workload::Dataset feed = workload::SceneGenerator(spec).generate();
  std::vector<img::Image> training;
  for (std::size_t i = 0; i < 12 && i < feed.photos.size(); ++i) {
    training.push_back(feed.photos[i].image);
  }
  const vision::PcaModel pca = vision::train_pca_sift(training);

  // Day 1: build and persist.
  {
    core::FastIndex index(core::FastConfig{}, pca);
    for (const auto& photo : feed.photos) {
      index.insert(photo.id, photo.image);
    }
    util::WallTimer save_timer;
    index.save(path);
    std::printf("built index over %zu photos; snapshot %s written in %s\n",
                index.size(), path.c_str(),
                util::fmt_duration(save_timer.elapsed_seconds()).c_str());
  }

  // Day 2: restart — restore and serve.
  util::WallTimer load_timer;
  core::FastIndex index = core::FastIndex::load(path, core::FastConfig{}, pca);
  std::printf("restored %zu photos in %s (%s in memory)\n", index.size(),
              util::fmt_duration(load_timer.elapsed_seconds()).c_str(),
              util::fmt_bytes(static_cast<double>(index.index_bytes()))
                  .c_str());

  const auto queries = workload::make_dup_queries(feed, 10, 0x9e5);
  std::size_t found = 0;
  for (const auto& q : queries) {
    const core::QueryResult r = index.query(q.image, 5);
    for (const auto& h : r.hits) {
      if (h.id == q.source) {
        ++found;
        break;
      }
    }
  }
  std::printf("post-restore retrieval: %zu/%zu query sources in the top-5\n",
              found, queries.size());

  // Retention expiry: drop the first quarter of the feed.
  const std::size_t expire = feed.photos.size() / 4;
  for (std::size_t i = 0; i < expire; ++i) {
    index.erase(feed.photos[i].id);
  }
  std::printf("expired %zu photos; index now holds %zu (%s)\n", expire,
              index.size(),
              util::fmt_bytes(static_cast<double>(index.index_bytes()))
                  .c_str());
  std::remove(path.c_str());
  return found * 2 >= queries.size() ? 0 : 1;
}
