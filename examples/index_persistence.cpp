// Index lifecycle as a deployed middleware would drive it: open a durable
// index, ingest today's uploads (each acked insert is WAL-logged before it
// is applied), checkpoint with save_snapshot(), keep ingesting, then
// "crash" — just drop the process state — and restart. open_or_recover()
// rebuilds the exact pre-crash index from the newest snapshot plus the WAL
// tail, serves queries, and expires old photos durably.
//
// Run: ./build/examples/index_persistence [num_photos]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/fast_index.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vision/pca_sift.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_generator.hpp"

namespace {

fast::core::FastIndex open_index(const std::string& dir,
                                 const fast::vision::PcaModel& pca,
                                 fast::core::RecoveryStats* stats = nullptr) {
  fast::core::DurabilityOptions opts;
  opts.dir = dir;  // wal_sync_every stays 1: every acked insert is durable
  auto opened = fast::core::FastIndex::open_or_recover(fast::core::FastConfig{},
                                                       pca, opts, stats);
  if (!opened.ok()) {
    std::fprintf(stderr, "open_or_recover failed: %s\n",
                 opened.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(opened).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fast;
  const std::size_t num_photos =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;
  const std::string dir = "fast_index_state";
  std::filesystem::remove_all(dir);

  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(num_photos);
  const workload::Dataset feed = workload::SceneGenerator(spec).generate();
  std::vector<img::Image> training;
  for (std::size_t i = 0; i < 12 && i < feed.photos.size(); ++i) {
    training.push_back(feed.photos[i].image);
  }
  const vision::PcaModel pca = vision::train_pca_sift(training);

  // Day 1: ingest, checkpoint mid-stream, keep ingesting, then crash. The
  // post-snapshot inserts live only in the WAL tail when the process dies.
  const std::size_t checkpoint_at = feed.photos.size() * 3 / 4;
  {
    core::FastIndex index = open_index(dir, pca);
    for (std::size_t i = 0; i < checkpoint_at; ++i) {
      index.insert(feed.photos[i].id, feed.photos[i].image);
    }
    util::WallTimer save_timer;
    if (!index.save_snapshot().ok()) return 1;
    std::printf("checkpointed %zu photos to %s/ in %s\n", index.size(),
                dir.c_str(),
                util::fmt_duration(save_timer.elapsed_seconds()).c_str());
    for (std::size_t i = checkpoint_at; i < feed.photos.size(); ++i) {
      index.insert(feed.photos[i].id, feed.photos[i].image);
    }
    std::printf("ingested %zu more after the checkpoint... crash!\n",
                index.size() - checkpoint_at);
  }  // no clean shutdown: the instance is simply gone

  // Day 2: restart — recover and serve.
  core::RecoveryStats stats;
  util::WallTimer load_timer;
  core::FastIndex index = open_index(dir, pca, &stats);
  std::printf(
      "recovered %zu photos in %s: snapshot seq %llu + %zu WAL records "
      "replayed (%s in memory)\n",
      index.size(), util::fmt_duration(load_timer.elapsed_seconds()).c_str(),
      static_cast<unsigned long long>(stats.snapshot_seq),
      stats.replayed_records,
      util::fmt_bytes(static_cast<double>(index.index_bytes())).c_str());

  const auto queries = workload::make_dup_queries(feed, 10, 0x9e5);
  std::size_t found = 0;
  for (const auto& q : queries) {
    const core::QueryResult r = index.query(q.image, 5);
    for (const auto& h : r.hits) {
      if (h.id == q.source) {
        ++found;
        break;
      }
    }
  }
  std::printf("post-recovery retrieval: %zu/%zu query sources in the top-5\n",
              found, queries.size());

  // Retention expiry: drop the first quarter of the feed. Erases are
  // WAL-logged too, so they survive the next restart.
  const std::size_t expire = feed.photos.size() / 4;
  for (std::size_t i = 0; i < expire; ++i) {
    index.erase(feed.photos[i].id);
  }
  std::printf("expired %zu photos; index now holds %zu (%s)\n", expire,
              index.size(),
              util::fmt_bytes(static_cast<double>(index.index_bytes()))
                  .c_str());

  // Day 3: one more restart proves the erases were durable.
  const std::size_t expected = index.size();
  core::FastIndex reopened = open_index(dir, pca);
  std::printf("reopened with %zu photos (expected %zu)\n", reopened.size(),
              expected);

  std::filesystem::remove_all(dir);
  return (reopened.size() == expected && found * 2 >= queries.size()) ? 0 : 1;
}
