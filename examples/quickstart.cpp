// Quickstart: build a FAST index over a small synthetic photo set, then
// run near-duplicate queries against it.
//
//   1. generate a synthetic tourist-photo dataset (landmarks, near-dups)
//   2. train the PCA-SIFT eigenspace on a sample of it
//   3. summarize + calibrate + insert every photo
//   4. query with fresh perturbed shots and check that the right
//      near-duplicate cluster comes back
//
// Run: ./build/examples/quickstart [num_images]
#include <cstdio>
#include <cstdlib>

#include "core/fast_index.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vision/pca_sift.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_generator.hpp"

int main(int argc, char** argv) {
  using namespace fast;
  const std::size_t num_images =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;

  // 1. Dataset.
  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(num_images);
  workload::SceneGenerator gen(spec);
  util::WallTimer timer;
  const workload::Dataset dataset = gen.generate();
  std::printf("generated %zu photos (%zu landmarks) in %s\n",
              dataset.photos.size(), spec.landmarks,
              util::fmt_duration(timer.elapsed_seconds()).c_str());

  // 2. PCA-SIFT eigenspace from a training sample.
  std::vector<img::Image> sample;
  for (std::size_t i = 0; i < dataset.photos.size() && i < 24; ++i) {
    sample.push_back(dataset.photos[i].image);
  }
  timer.reset();
  const vision::PcaModel pca = vision::train_pca_sift(sample);
  std::printf("trained PCA-SIFT eigenspace (%zu -> %zu dims) in %s\n",
              pca.input_dim(), pca.output_dim(),
              util::fmt_duration(timer.elapsed_seconds()).c_str());

  // 3. Index construction: summarize, calibrate LSH scale, insert.
  core::FastConfig config;
  core::FastIndex index(config, pca);
  timer.reset();
  std::vector<hash::SparseSignature> signatures;
  signatures.reserve(dataset.photos.size());
  for (const auto& photo : dataset.photos) {
    signatures.push_back(index.summarize(photo.image));
  }
  // Calibration sample: a few query-like perturbations against the corpus
  // (only needed by the p-stable backend; harmless for MinHash).
  const auto cal_queries = workload::make_dup_queries(dataset, 8, 0xca1);
  std::vector<hash::SparseSignature> cal_sigs;
  for (const auto& q : cal_queries) cal_sigs.push_back(index.summarize(q.image));
  index.calibrate_scale(cal_sigs, signatures);
  for (std::size_t i = 0; i < dataset.photos.size(); ++i) {
    index.insert_signature(dataset.photos[i].id, signatures[i]);
  }
  std::printf(
      "indexed %zu photos in %s (index: %s, %zu groups, scale %.4f)\n",
      index.size(), util::fmt_duration(timer.elapsed_seconds()).c_str(),
      util::fmt_bytes(static_cast<double>(index.index_bytes())).c_str(),
      index.group_count(), index.config().lsh_input_scale);

  // 4. Near-duplicate queries.
  const auto queries = workload::make_dup_queries(dataset, 20);
  std::size_t hit_at_5 = 0;
  double mean_candidates = 0;
  timer.reset();
  for (const auto& q : queries) {
    const core::QueryResult r = index.query(q.image, 5);
    mean_candidates += static_cast<double>(r.candidates);
    for (const auto& hit : r.hits) {
      bool relevant = false;
      for (std::uint64_t id : q.relevant) {
        if (id == hit.id) {
          relevant = true;
          break;
        }
      }
      if (relevant) {
        ++hit_at_5;
        break;
      }
    }
  }
  const double q_seconds = timer.elapsed_seconds();
  std::printf(
      "near-dup queries: %zu/%zu found their cluster in the top-5 "
      "(%.1f candidates/query, %s/query native)\n",
      hit_at_5, queries.size(), mean_candidates / queries.size(),
      util::fmt_duration(q_seconds / queries.size()).c_str());
  return hit_at_5 * 2 >= queries.size() ? 0 : 1;  // fail loudly if recall<50%
}
