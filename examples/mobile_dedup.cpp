// Energy-aware photo uploading from a smartphone (the paper's §IV-B8).
//
// A phone about to upload a batch of vacation photos first ships each
// photo's ~sub-KB FAST signature; the cloud answers "I already have a
// near-duplicate" for most tourist shots, and only novel photos are
// transmitted in full. The example compares this against the chunk-based
// transmission baseline on the same batch and prints the bandwidth and
// battery savings.
//
// Run: ./build/examples/mobile_dedup [num_photos] [batch]
#include <cstdio>
#include <cstdlib>

#include "core/fast_index.hpp"
#include "mobile/transmitter.hpp"
#include "mobile/user_groups.hpp"
#include "util/table.hpp"
#include "vision/pca_sift.hpp"
#include "workload/scene_generator.hpp"

int main(int argc, char** argv) {
  using namespace fast;
  const std::size_t num_photos =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;
  const std::size_t batch =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;

  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(num_photos);
  const workload::Dataset album = workload::SceneGenerator(spec).generate();
  std::printf("vacation album: %zu candidate photos (%s of JPEG data)\n",
              album.photos.size(),
              util::fmt_bytes(static_cast<double>(album.total_file_bytes()))
                  .c_str());

  std::vector<img::Image> training;
  for (std::size_t i = 0; i < 12 && i < album.photos.size(); ++i) {
    training.push_back(album.photos[i].image);
  }
  const vision::PcaModel pca = vision::train_pca_sift(training);

  const auto groups = mobile::make_user_groups(album, 3);
  const auto items = mobile::make_upload_batch(album, groups[0], batch, 0xfee);

  // Baseline: chunk-based transmission (content-defined chunks, server-side
  // fingerprint store).
  mobile::ChunkTransmitter chunk_tx(mobile::ChunkerConfig{},
                                    sim::EnergyModel{});
  const mobile::TransmissionReport chunk = chunk_tx.upload_batch(items);

  // FAST: signature probe first, upload only when nothing similar exists.
  core::FastConfig config;
  core::FastIndex cloud_index(config, pca);
  mobile::FastTransmitter fast_tx(cloud_index, sim::EnergyModel{}, 0.14);
  const mobile::TransmissionReport fast = fast_tx.upload_batch(items);

  util::Table table({"scheme", "sent", "full uploads", "suppressed",
                     "client CPU", "battery energy"});
  auto row = [&](const char* name, const mobile::TransmissionReport& r) {
    table.add_row({name, util::fmt_bytes(static_cast<double>(r.sent_bytes)),
                   std::to_string(r.full_uploads),
                   std::to_string(r.suppressed),
                   util::fmt_duration(r.cpu_seconds),
                   util::fmt_double(r.energy_joule, 1) + "J"});
  };
  row("chunk-based", chunk);
  row("FAST near-dedup", fast);
  table.print("uploading " + std::to_string(batch) + " photos (" +
              util::fmt_bytes(static_cast<double>(chunk.raw_bytes)) + " raw)");

  std::printf("FAST saves %s of bandwidth and %s of battery energy vs the "
              "chunk scheme\n",
              util::fmt_percent(1.0 - static_cast<double>(fast.sent_bytes) /
                                          static_cast<double>(
                                              chunk.sent_bytes)).c_str(),
              util::fmt_percent(1.0 - fast.energy_joule / chunk.energy_joule)
                  .c_str());
  return fast.sent_bytes < chunk.sent_bytes ? 0 : 1;
}
