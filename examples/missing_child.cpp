// The paper's headline use case, end to end: finding a missing child in a
// crowd-sourced photo stream.
//
// A park's visitors upload photos all day; a child is reported missing and
// the parents provide portraits. FAST has already indexed every upload
// (Bloom summary -> locality hashing -> cuckoo groups), so the portraits
// are summarized, their correlation groups probed, and the candidate photos
// ranked — in milliseconds, without touching the photo files. The example
// prints the clue list (photos likely containing the child, with landmark
// locations) exactly as an operator would consume it, and saves the top
// clue image plus the portrait as PGM files for eyeballing.
//
// Run: ./build/examples/missing_child [num_photos] [portraits]
#include <cstdio>
#include <cstdlib>

#include "core/fast_index.hpp"
#include "img/pnm_io.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vision/pca_sift.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_generator.hpp"

int main(int argc, char** argv) {
  using namespace fast;
  const std::size_t num_photos =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const std::size_t num_portraits =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;

  // The day's uploads: tourists shooting landmarks; the child appears in a
  // random subset of backgrounds.
  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(num_photos);
  spec.child_presence_prob = 0.08;
  const workload::Dataset park = workload::SceneGenerator(spec).generate();
  const auto truly_contains = park.child_photo_ids();
  std::printf("park feed: %zu photos uploaded; child actually appears in %zu "
              "of them (ground truth known to the generator only)\n",
              park.photos.size(), truly_contains.size());

  // Cloud side: index construction as photos arrive.
  std::vector<img::Image> training;
  for (std::size_t i = 0; i < 16 && i < park.photos.size(); ++i) {
    training.push_back(park.photos[i].image);
  }
  const vision::PcaModel pca = vision::train_pca_sift(training);
  core::FastConfig config;
  core::FastIndex index(config, pca);
  util::WallTimer build_timer;
  for (const auto& photo : park.photos) {
    index.insert(photo.id, photo.image);
  }
  std::printf("indexed the feed in %s (index: %s in memory)\n",
              util::fmt_duration(build_timer.elapsed_seconds()).c_str(),
              util::fmt_bytes(static_cast<double>(index.index_bytes()))
                  .c_str());

  // The parents hand over portraits; each is queried against the index.
  const workload::QuerySet portraits =
      workload::make_child_queries(park, num_portraits);
  util::Table clues({"rank", "photo id", "similarity", "landmark",
                     "contains child?"});
  std::size_t confirmed = 0;
  util::WallTimer query_timer;
  core::QueryResult best_result;
  for (const auto& portrait : portraits.portraits) {
    const core::QueryResult r = index.query(portrait, 8);
    if (best_result.hits.empty() ||
        (!r.hits.empty() &&
         r.hits.front().score > best_result.hits.front().score)) {
      best_result = r;
    }
  }
  const double query_s = query_timer.elapsed_seconds();
  for (std::size_t rank = 0; rank < best_result.hits.size(); ++rank) {
    const auto& hit = best_result.hits[rank];
    const auto& photo = park.photos[hit.id];
    clues.add_row({std::to_string(rank + 1), std::to_string(hit.id),
                   util::fmt_double(hit.score, 3),
                   "landmark-" + std::to_string(photo.landmark),
                   photo.contains_child ? "YES" : "no"});
    confirmed += photo.contains_child;
  }
  clues.print("clue list from the best portrait query");
  std::printf(
      "%zu portrait queries in %s (%s per query); %zu of the best query's "
      "clues verifiably contain the child\n",
      portraits.portraits.size(), util::fmt_duration(query_s).c_str(),
      util::fmt_duration(query_s / portraits.portraits.size()).c_str(),
      confirmed);

  // Artifacts for human inspection (the paper's post-verification step).
  img::write_pgm(portraits.portraits.front(), "missing_child_portrait.pgm");
  if (!best_result.hits.empty()) {
    img::write_pgm(park.photos[best_result.hits.front().id].image,
                   "missing_child_top_clue.pgm");
    std::printf("wrote missing_child_portrait.pgm and "
                "missing_child_top_clue.pgm\n");
  }
  return confirmed > 0 ? 0 : 1;
}
