// Stage-oriented pipeline tour: the same FastIndex behaviour composed
// three ways, plus the batch-first execution path.
//
//   1. stock index (p-stable LSH aggregator + flat cuckoo store)
//   2. config-selected backends (MinHash banding + chained vertical
//      addressing, the paper's Sec. III baseline layout)
//   3. explicit stage injection through the pipeline interfaces
//
// Every variant is fed through insert_batch/query_batch with a thread
// pool, which parallelises feature extraction + summarisation before the
// sequential placement step.
//
// Run: ./build/examples/batch_pipeline [num_images]
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>

#include "core/fast_index.hpp"
#include "core/pipeline/factory.hpp"
#include "hash/group_stores.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"
#include "vision/pca_sift.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_generator.hpp"

namespace {

struct RunStats {
  double build_s = 0;
  double query_s = 0;
  std::size_t hits = 0;
  std::size_t groups = 0;
};

RunStats run(fast::core::FastIndex& index,
             const fast::workload::Dataset& dataset,
             const std::vector<fast::workload::DupQuery>& queries,
             fast::util::ThreadPool& pool) {
  using namespace fast;
  std::vector<core::BatchImage> items;
  items.reserve(dataset.photos.size());
  for (const auto& photo : dataset.photos) {
    items.push_back(core::BatchImage{photo.id, &photo.image});
  }
  util::WallTimer timer;
  index.insert_batch(items, &pool);
  RunStats stats;
  stats.build_s = timer.elapsed_seconds();

  std::vector<const img::Image*> query_images;
  query_images.reserve(queries.size());
  for (const auto& q : queries) query_images.push_back(&q.image);
  timer.reset();
  const auto results = index.query_batch(query_images, 5, &pool);
  stats.query_s = timer.elapsed_seconds();

  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& hit : results[i].hits) {
      bool relevant = false;
      for (std::uint64_t id : queries[i].relevant) {
        if (id == hit.id) relevant = true;
      }
      if (relevant) {
        ++stats.hits;
        break;
      }
    }
  }
  stats.groups = index.group_count();
  return stats;
}

// Writes the variant's per-stage metrics registry next to the tabular
// output (FAST_METRICS_DIR overrides the directory). Non-fatal on failure.
void dump_metrics(const fast::core::FastIndex& index, const std::string& tag) {
  const char* override_dir = std::getenv("FAST_METRICS_DIR");
  const std::string dir = override_dir != nullptr ? override_dir : "results";
  try {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/batch_pipeline_" + tag + "_metrics.json";
    index.metrics().write_json(path);
    std::printf("metrics: %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics dump failed for %s: %s\n", tag.c_str(),
                 e.what());
  }
}

// Per-variant trace export: the tracer is process-global, so each variant
// writes its spans and then reset()s — otherwise variant 2's trace would
// contain every span variant 1 recorded.
void dump_trace(const std::string& tag) {
  fast::util::Tracer& tracer = fast::util::Tracer::global();
  const auto stats = tracer.stats();
  if (!tracer.enabled() && stats.spans_recorded == 0) return;
  const char* trace_dir = std::getenv("FAST_TRACE_DIR");
  const char* metrics_dir = std::getenv("FAST_METRICS_DIR");
  const std::string dir = trace_dir != nullptr     ? trace_dir
                          : metrics_dir != nullptr ? metrics_dir
                                                   : "results";
  try {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/batch_pipeline_" + tag + ".trace.json";
    tracer.write_chrome_trace(path);
    tracer.write_profiles(dir + "/batch_pipeline_" + tag +
                          ".query_profiles.json");
    std::printf("trace: %s (%llu spans)\n", path.c_str(),
                static_cast<unsigned long long>(stats.spans_recorded));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace dump failed for %s: %s\n", tag.c_str(),
                 e.what());
  }
  tracer.reset();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fast;
  util::configure_global_tracer_from_env();
  std::size_t num_images = 120;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      util::TraceOptions opts = util::Tracer::global().options();
      opts.sample_rate =
          arg == "--trace" ? 1.0 : std::atof(arg.c_str() + sizeof("--trace=") - 1);
      util::Tracer::global().configure(opts);
    } else if (std::atoi(argv[i]) > 0) {
      num_images = static_cast<std::size_t>(std::atoi(argv[i]));
    }
  }

  workload::DatasetSpec spec = workload::DatasetSpec::wuhan(num_images);
  const workload::Dataset dataset = workload::SceneGenerator(spec).generate();
  std::vector<img::Image> sample;
  for (std::size_t i = 0; i < dataset.photos.size() && i < 24; ++i) {
    sample.push_back(dataset.photos[i].image);
  }
  const vision::PcaModel pca = vision::train_pca_sift(sample);
  const auto queries = workload::make_dup_queries(dataset, 20);
  util::ThreadPool pool(4);

  util::Table table({"pipeline", "build", "query", "recall@5", "groups"});
  const auto add = [&](const char* name, RunStats s) {
    table.add_row({name, util::fmt_duration(s.build_s),
                   util::fmt_duration(s.query_s),
                   std::to_string(s.hits) + "/" + std::to_string(queries.size()),
                   std::to_string(s.groups)});
  };

  // 1. Stock pipeline: MinHash banding over flat cuckoo tables.
  {
    core::FastIndex index(core::FastConfig{}, pca);
    add("minhash + flat-cuckoo", run(index, dataset, queries, pool));
    dump_metrics(index, "flat_cuckoo");
    dump_trace("flat_cuckoo");
  }

  // 2. Backends picked from config alone — no code changes.
  {
    core::FastConfig cfg;
    cfg.chs_backend = core::FastConfig::ChsBackend::kChained;
    core::FastIndex index(cfg, pca);
    add("minhash + chained", run(index, dataset, queries, pool));
    dump_metrics(index, "chained");
    dump_trace("chained");
  }

  // 3. Explicit stage injection: swap in one custom stage (a chained
  //    store) while the factory builds the rest.
  {
    core::FastConfig cfg;
    auto aggregator = core::pipeline::make_aggregator(cfg);
    auto store = std::make_unique<hash::ChainedGroupStore>(
        cfg.chained_buckets, cfg.cuckoo.seed, aggregator->table_count());
    core::FastIndex index(cfg, core::pipeline::make_summarizer(cfg, pca),
                          std::move(aggregator), std::move(store));
    add("minhash + injected chained", run(index, dataset, queries, pool));
    dump_trace("injected_chained");
  }

  table.print("batch pipeline variants over " +
              std::to_string(dataset.photos.size()) + " photos");
  return 0;
}
