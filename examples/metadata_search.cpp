// Generality of the FAST methodology (the paper's §II-A and Table I):
// the same summarize -> locality-hash -> flat-cuckoo pipeline applied to a
// completely different data type — file-system metadata records, the
// workload of Spyglass/SmartStore.
//
// Each file's metadata is embedded as a multi-dimensional vector, the
// vector's quantized field groups are Bloom-summarized, MinHash bands over
// the summary key a flat cuckoo table, and "find files correlated with
// this one" becomes the same O(1) probe-and-rank the image use case runs.
//
// Run: ./build/examples/metadata_search [num_files]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "hash/bloom_filter.hpp"
#include "hash/flat_cuckoo_table.hpp"
#include "hash/minhash.hpp"
#include "hash/sparse_signature.hpp"
#include "util/table.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workload/metadata.hpp"

namespace {

using namespace fast;

// SM for metadata: quantize overlapping field groups into Bloom items.
hash::SparseSignature summarize_meta(const std::vector<float>& vec) {
  hash::BloomFilter bloom(4096, 8);
  constexpr std::size_t kGroup = 3;
  std::vector<std::int16_t> cells(1 + kGroup);
  for (std::size_t start = 0; start + kGroup <= vec.size(); ++start) {
    cells[0] = static_cast<std::int16_t>(start);
    for (std::size_t i = 0; i < kGroup; ++i) {
      cells[1 + i] = static_cast<std::int16_t>(
          std::lround(vec[start + i] / 0.75f));
    }
    bloom.insert(cells.data(), cells.size() * sizeof(cells[0]));
  }
  return hash::SparseSignature(bloom);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_files =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4000;
  constexpr std::size_t kClusters = 24;

  // A synthetic namespace with correlated project directories.
  const auto files = workload::generate_namespace(num_files, kClusters);
  std::printf("namespace: %zu files in %zu correlated clusters\n",
              files.size(), kClusters);

  // SM + SA + CHS, exactly as in the image pipeline.
  util::WallTimer build;
  std::vector<hash::SparseSignature> signatures;
  signatures.reserve(files.size());
  for (const auto& f : files) {
    signatures.push_back(summarize_meta(workload::metadata_vector(f)));
  }
  hash::MinHasher hasher(hash::MinHashConfig{.bands = 32, .band_size = 2,
                                             .seed = 0x3e7a});
  std::vector<hash::FlatCuckooTable> tables;
  std::vector<std::vector<std::uint64_t>> groups;
  for (std::size_t b = 0; b < hasher.config().bands; ++b) {
    hash::FlatCuckooConfig cfg;
    cfg.capacity = 4 * num_files;
    cfg.seed = 0xfeed + b;
    tables.emplace_back(cfg);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto mh = hasher.minhashes(signatures[i]);
    for (std::size_t b = 0; b < tables.size(); ++b) {
      const std::uint64_t key = hasher.band_key(b, mh);
      if (const auto group = tables[b].find(key)) {
        groups[*group].push_back(i);
      } else {
        groups.emplace_back(std::vector<std::uint64_t>{i});
        tables[b].insert(key, groups.size() - 1);
      }
    }
  }
  std::printf("indexed in %s (%zu correlation groups)\n",
              util::fmt_duration(build.elapsed_seconds()).c_str(),
              groups.size());

  // Query: "files correlated with file X" for a handful of probes. A probe
  // counts as correct when most of its top neighbors come from the same
  // generator cluster (recomputable because cluster assignment is
  // deterministic in the generator's seeding).
  util::Table table({"probe file", "extension", "candidates",
                     "top-5 same-cluster", "query time"});
  util::Rng rng(0x9997);
  for (int probe = 0; probe < 6; ++probe) {
    const std::size_t qi = rng.uniform_u64(files.size());
    util::WallTimer qt;
    const auto mh = hasher.minhashes(signatures[qi]);
    std::unordered_set<std::uint64_t> candidates;
    for (std::size_t b = 0; b < tables.size(); ++b) {
      if (const auto group = tables[b].find(hasher.band_key(b, mh))) {
        for (std::uint64_t id : groups[*group]) candidates.insert(id);
      }
    }
    std::vector<std::pair<double, std::uint64_t>> ranked;
    for (std::uint64_t id : candidates) {
      if (id == qi) continue;
      ranked.emplace_back(
          hash::SparseSignature::jaccard(signatures[qi], signatures[id]), id);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    const double q_s = qt.elapsed_seconds();

    // "Same cluster" proxy: files sharing extension + owner (the cluster
    // traits the generator correlates).
    std::size_t same = 0;
    const std::size_t top = std::min<std::size_t>(5, ranked.size());
    for (std::size_t r = 0; r < top; ++r) {
      const auto& peer = files[ranked[r].second];
      same += peer.extension == files[qi].extension &&
              peer.owner == files[qi].owner;
    }
    table.add_row({files[qi].name, files[qi].extension,
                   std::to_string(candidates.size()),
                   std::to_string(same) + "/" + std::to_string(top),
                   util::fmt_duration(q_s)});
  }
  table.print("correlated-file queries over metadata (Table I generality)");
  return 0;
}
